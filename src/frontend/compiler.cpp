#include "frontend/compiler.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

namespace paralagg::frontend {

namespace {

core::AggregatorPtr make_aggregator(AggKind k) {
  switch (k) {
    case AggKind::kMin: return core::make_min_aggregator();
    case AggKind::kMax: return core::make_max_aggregator();
    case AggKind::kSum: return core::make_sum_aggregator();
    case AggKind::kMCount: return core::make_mcount_aggregator();
    case AggKind::kNone: break;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Analysis state
// ---------------------------------------------------------------------------

struct Analysis {
  const ProgramAst* ast = nullptr;
  std::map<std::string, std::size_t> decl_of;  // name -> ast->decls index
  std::vector<bool> in_head;                   // per decl
  std::vector<int> scc_of;                     // per decl
  std::vector<bool> scc_recursive;             // per scc id
  std::vector<std::vector<std::size_t>> scc_members;  // decl ids, topo order

  [[nodiscard]] const DeclAst& decl(std::size_t i) const { return ast->decls[i]; }

  std::size_t decl_index(const std::string& name, int line) const {
    const auto it = decl_of.find(name);
    if (it == decl_of.end()) {
      throw FrontendError(line, "relation '" + name + "' is not declared");
    }
    return it->second;
  }
};

void check_atom_shape(const Analysis& a, const Atom& atom, bool body) {
  const auto d = a.decl_index(atom.relation, atom.line);
  if (atom.args.size() != a.decl(d).columns.size()) {
    throw FrontendError(atom.line, atom.relation + ": expected " +
                                       std::to_string(a.decl(d).columns.size()) +
                                       " arguments, got " + std::to_string(atom.args.size()));
  }
  for (const auto& arg : atom.args) {
    if (body && !arg.is_simple()) {
      throw FrontendError(atom.line,
                          atom.relation + ": body arguments must be variables, constants, "
                                          "or wildcards (arithmetic belongs in the head)");
    }
    if (!body && arg.kind == Term::Kind::kWildcard) {
      throw FrontendError(atom.line, atom.relation + ": wildcards are not allowed in heads");
    }
  }
}

/// Tarjan SCC over relation dependencies (head -> body).  Finalization
/// order puts dependencies before dependents, which is exactly stratum
/// evaluation order.
void compute_sccs(Analysis& a) {
  const std::size_t n = a.ast->decls.size();
  std::vector<std::set<std::size_t>> deps(n);
  for (const auto& rule : a.ast->rules) {
    const auto h = a.decl_index(rule.head.relation, rule.line);
    for (const auto& atom : rule.body) {
      deps[h].insert(a.decl_index(atom.relation, atom.line));
    }
  }

  a.scc_of.assign(n, -1);
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  int next_index = 0;

  std::function<void(std::size_t)> strongconnect = [&](std::size_t v) {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (const auto w : deps[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      const int scc = static_cast<int>(a.scc_members.size());
      a.scc_members.emplace_back();
      for (;;) {
        const auto w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        a.scc_of[w] = scc;
        a.scc_members.back().push_back(w);
        if (w == v) break;
      }
    }
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (index[v] < 0) strongconnect(v);
  }

  // An SCC is recursive if it has >1 member or a self-loop.
  a.scc_recursive.assign(a.scc_members.size(), false);
  for (std::size_t s = 0; s < a.scc_members.size(); ++s) {
    if (a.scc_members[s].size() > 1) a.scc_recursive[s] = true;
  }
  for (const auto& rule : a.ast->rules) {
    const auto h = a.decl_index(rule.head.relation, rule.line);
    for (const auto& atom : rule.body) {
      const auto b = a.decl_index(atom.relation, atom.line);
      if (b == h) a.scc_recursive[static_cast<std::size_t>(a.scc_of[h])] = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Join patterns and index selection
// ---------------------------------------------------------------------------

/// Ordered join variables of a two-atom body: shared vars, ordered by first
/// occurrence in atom0.
std::vector<std::string> join_vars(const Atom& a0, const Atom& a1, int line) {
  std::set<std::string> in1;
  for (const auto& t : a1.args) {
    if (t.kind == Term::Kind::kVar) in1.insert(t.var);
  }
  std::vector<std::string> out;
  for (const auto& t : a0.args) {
    if (t.kind == Term::Kind::kVar && in1.contains(t.var) &&
        std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  }
  if (out.empty()) {
    throw FrontendError(line,
                        "the two body atoms share no variable (cartesian products are "
                        "not supported; add a join variable)");
  }
  return out;
}

/// Declared-column pattern: first occurrence of each join var in the atom.
std::vector<std::size_t> pattern_of(const Analysis& a, const Atom& atom,
                                    const std::vector<std::string>& vars) {
  const auto& decl = a.decl(a.decl_index(atom.relation, atom.line));
  std::vector<std::size_t> out;
  for (const auto& v : vars) {
    std::size_t pos = decl.columns.size();
    for (std::size_t c = 0; c < atom.args.size(); ++c) {
      if (atom.args[c].kind == Term::Kind::kVar && atom.args[c].var == v) {
        pos = c;
        break;
      }
    }
    assert(pos < decl.columns.size());
    if (decl.agg != AggKind::kNone && pos == decl.agg_column) {
      throw FrontendError(atom.line,
                          atom.relation + ": joining on the aggregated column '" +
                              decl.columns[pos] +
                              "' is not allowed (paper §III-A: aggregated columns are "
                              "never joined upon)");
    }
    out.push_back(pos);
  }
  return out;
}

struct PatternUse {
  std::vector<std::size_t> cols;
  int count = 0;
};

/// Per-declared-relation pattern demand, in first-seen order.
using PatternDemand = std::vector<std::vector<PatternUse>>;

void record_pattern(PatternDemand& demand, std::size_t decl_id,
                    const std::vector<std::size_t>& cols) {
  for (auto& use : demand[decl_id]) {
    if (use.cols == cols) {
      ++use.count;
      return;
    }
  }
  demand[decl_id].push_back({cols, 1});
}

/// Stored order for (decl, pattern): pattern cols, then the remaining
/// independent cols in declared order, then the aggregated col last.
std::vector<std::size_t> make_perm(const DeclAst& decl,
                                   const std::vector<std::size_t>& pattern) {
  std::vector<std::size_t> perm = pattern;
  for (std::size_t c = 0; c < decl.columns.size(); ++c) {
    if (decl.agg != AggKind::kNone && c == decl.agg_column) continue;
    if (std::find(perm.begin(), perm.end(), c) == perm.end()) perm.push_back(c);
  }
  if (decl.agg != AggKind::kNone) perm.push_back(decl.agg_column);
  return perm;
}

// ---------------------------------------------------------------------------
// Expression lowering
// ---------------------------------------------------------------------------

struct Binding {
  int side;  // 0 = A, 1 = B
  std::size_t slot;
};

core::Expr col_ref(const Binding& b) {
  return b.side == 0 ? core::Expr::col_a(b.slot) : core::Expr::col_b(b.slot);
}

void add_filter(std::optional<core::Expr>& filter, core::Expr clause) {
  if (filter) {
    filter = core::Expr::logical_and(std::move(*filter), std::move(clause));
  } else {
    filter = std::move(clause);
  }
}

std::optional<core::Expr> conjoin(std::vector<core::Expr> clauses) {
  std::optional<core::Expr> out;
  for (auto& c : clauses) add_filter(out, std::move(c));
  return out;
}

/// Bind one body atom's variables to stored slots; emit equality filters
/// for constants and repeated variables.  Prefix slots of side B skip the
/// filter when the variable is already bound at the same prefix slot of
/// side A — the join itself enforces that equality.
void bind_atom(const Atom& atom, const RelationPlan& plan, int side,
               std::map<std::string, Binding>& bind,
               std::vector<core::Expr>& clauses) {
  for (std::size_t s = 0; s < plan.arity(); ++s) {
    const auto& arg = atom.args[plan.perm[s]];
    switch (arg.kind) {
      case Term::Kind::kWildcard:
        break;
      case Term::Kind::kConst:
        clauses.push_back(
            core::Expr::eq(col_ref({side, s}), core::Expr::constant(arg.constant)));
        break;
      case Term::Kind::kVar: {
        const auto it = bind.find(arg.var);
        if (it == bind.end()) {
          bind.emplace(arg.var, Binding{side, s});
          break;
        }
        const bool join_enforced =
            side == 1 && s < plan.jcc && it->second.side == 0 && it->second.slot == s;
        if (!join_enforced) {
          clauses.push_back(core::Expr::eq(col_ref({side, s}), col_ref(it->second)));
        }
        break;
      }
      default:
        break;  // validated earlier: body args are simple
    }
  }
}

core::Expr compile_term(const Term& t, const std::map<std::string, Binding>& bind,
                        int line) {
  switch (t.kind) {
    case Term::Kind::kConst:
      return core::Expr::constant(t.constant);
    case Term::Kind::kVar: {
      const auto it = bind.find(t.var);
      if (it == bind.end()) {
        throw FrontendError(line, "variable '" + t.var +
                                      "' is not bound by any body atom (unsafe rule)");
      }
      return col_ref(it->second);
    }
    case Term::Kind::kAdd:
      return core::Expr::add(compile_term(t.kids[0], bind, line),
                             compile_term(t.kids[1], bind, line));
    case Term::Kind::kSub:
      return core::Expr::sub(compile_term(t.kids[0], bind, line),
                             compile_term(t.kids[1], bind, line));
    case Term::Kind::kMin:
      return core::Expr::min(compile_term(t.kids[0], bind, line),
                             compile_term(t.kids[1], bind, line));
    case Term::Kind::kMax:
      return core::Expr::max(compile_term(t.kids[0], bind, line),
                             compile_term(t.kids[1], bind, line));
    case Term::Kind::kWildcard:
      throw FrontendError(line, "wildcard used where a value is required");
  }
  throw FrontendError(line, "malformed term");
}

core::Expr compile_constraint(const Constraint& c, const std::map<std::string, Binding>& bind) {
  auto lhs = compile_term(c.lhs, bind, c.line);
  auto rhs = compile_term(c.rhs, bind, c.line);
  switch (c.kind) {
    case Constraint::Kind::kLt: return core::Expr::less(std::move(lhs), std::move(rhs));
    case Constraint::Kind::kLe: return core::Expr::less_eq(std::move(lhs), std::move(rhs));
    case Constraint::Kind::kGt: return core::Expr::less(std::move(rhs), std::move(lhs));
    case Constraint::Kind::kGe: return core::Expr::less_eq(std::move(rhs), std::move(lhs));
    case Constraint::Kind::kEq: return core::Expr::eq(std::move(lhs), std::move(rhs));
    case Constraint::Kind::kNe: return core::Expr::neq(std::move(lhs), std::move(rhs));
  }
  throw FrontendError(c.line, "malformed constraint");
}

}  // namespace

// ---------------------------------------------------------------------------
// CompiledProgram::compile
// ---------------------------------------------------------------------------

CompiledProgram CompiledProgram::compile(const ProgramAst& ast) {
  Analysis a;
  a.ast = &ast;

  // --- declarations ----------------------------------------------------------
  for (std::size_t i = 0; i < ast.decls.size(); ++i) {
    const auto& d = ast.decls[i];
    if (!a.decl_of.emplace(d.name, i).second) {
      throw FrontendError(d.line, "relation '" + d.name + "' declared twice");
    }
    if (d.columns.empty()) throw FrontendError(d.line, d.name + ": no columns");
    if (d.agg != AggKind::kNone && d.columns.size() < 2) {
      throw FrontendError(d.line,
                          d.name + ": an aggregated relation needs at least one "
                                   "independent column besides the aggregate");
    }
    std::set<std::string> seen;
    for (const auto& c : d.columns) {
      if (!seen.insert(c).second) {
        throw FrontendError(d.line, d.name + ": duplicate column '" + c + "'");
      }
    }
  }

  // --- rule shape ----------------------------------------------------------
  a.in_head.assign(ast.decls.size(), false);
  for (const auto& rule : ast.rules) {
    check_atom_shape(a, rule.head, /*body=*/false);
    if (rule.body.empty()) {
      throw FrontendError(rule.line, "rules need at least one body atom");
    }
    if (rule.body.size() > 2) {
      throw FrontendError(rule.line,
                          "at most two body atoms per rule (PARALAGG compiles to binary "
                          "joins; factor larger bodies through auxiliary relations)");
    }
    for (const auto& atom : rule.body) check_atom_shape(a, atom, /*body=*/true);
    const auto negated =
        std::count_if(rule.body.begin(), rule.body.end(),
                      [](const Atom& at) { return at.negated; });
    if (negated > 1) {
      throw FrontendError(rule.line, "at most one negated atom per rule");
    }
    if (negated == static_cast<long>(rule.body.size())) {
      throw FrontendError(rule.line,
                          "a rule needs a positive atom to bind its variables "
                          "(negation alone is unsafe)");
    }
    if (negated == 1 && rule.body.size() != 2) {
      throw FrontendError(rule.line,
                          "negation currently pairs one positive and one negated atom");
    }
    if (negated == 1) {
      const auto& pos = rule.body[0].negated ? rule.body[1] : rule.body[0];
      const auto& neg = rule.body[0].negated ? rule.body[0] : rule.body[1];
      std::set<std::string> pos_vars;
      for (const auto& t : pos.args) {
        if (t.kind == Term::Kind::kVar) pos_vars.insert(t.var);
      }
      for (const auto& t : neg.args) {
        if (t.kind == Term::Kind::kVar && !pos_vars.contains(t.var)) {
          throw FrontendError(rule.line, "variable '" + t.var +
                                             "' appears only under negation (unsafe)");
        }
      }
    }
    a.in_head[a.decl_index(rule.head.relation, rule.line)] = true;
  }
  for (std::size_t i = 0; i < ast.decls.size(); ++i) {
    if (ast.decls[i].is_input && a.in_head[i]) {
      throw FrontendError(ast.decls[i].line,
                          ast.decls[i].name + ": input relations cannot appear in rule heads");
    }
  }
  for (const auto& fact : ast.facts) {
    check_atom_shape(a, fact, /*body=*/true);
    if (a.in_head[a.decl_index(fact.relation, fact.line)]) {
      throw FrontendError(fact.line,
                          fact.relation + ": facts may only seed relations that no rule "
                                          "derives (declare a separate input relation)");
    }
  }

  // --- stratification --------------------------------------------------------
  compute_sccs(a);
  for (const auto& rule : ast.rules) {
    const auto h = a.decl_index(rule.head.relation, rule.line);
    for (const auto& atom : rule.body) {
      if (atom.negated &&
          a.scc_of[a.decl_index(atom.relation, atom.line)] == a.scc_of[h]) {
        throw FrontendError(rule.line,
                            "negation of '" + atom.relation +
                                "' inside its own recursion is not stratified");
      }
    }
    const auto& d = a.decl(h);
    if (d.agg == AggKind::kSum && a.scc_recursive[static_cast<std::size_t>(a.scc_of[h])]) {
      throw FrontendError(rule.line,
                          d.name + ": $SUM is not a lattice and cannot run inside a "
                                   "recursive stratum (use min/max/mcount, or make the "
                                   "stratum non-recursive)");
    }
  }

  // --- pattern demand ---------------------------------------------------------
  PatternDemand demand(ast.decls.size());
  for (const auto& rule : ast.rules) {
    if (rule.body.size() != 2) continue;
    // Order join variables by the positive atom (for antijoins the negated
    // atom may come first syntactically).
    const bool swap = rule.body[0].negated;
    const auto& a0 = rule.body[swap ? 1 : 0];
    const auto& a1 = rule.body[swap ? 0 : 1];
    const auto vars = join_vars(a0, a1, rule.line);
    record_pattern(demand, a.decl_index(a0.relation, rule.line),
                   pattern_of(a, a0, vars));
    record_pattern(demand, a.decl_index(a1.relation, rule.line),
                   pattern_of(a, a1, vars));
  }

  // --- relation plans -----------------------------------------------------------
  CompiledProgram out;
  std::vector<std::size_t> primary_plan(ast.decls.size());
  // plan id for (decl, pattern):
  std::map<std::pair<std::size_t, std::vector<std::size_t>>, std::size_t> plan_for_pattern;

  for (std::size_t i = 0; i < ast.decls.size(); ++i) {
    const auto& d = ast.decls[i];
    // Primary pattern: the most demanded; first-seen wins ties; fall back
    // to the first independent column.
    std::vector<std::size_t> primary;
    int best = 0;
    for (const auto& use : demand[i]) {
      if (use.count > best) {
        best = use.count;
        primary = use.cols;
      }
    }
    if (primary.empty()) {
      for (std::size_t c = 0; c < d.columns.size(); ++c) {
        if (d.agg == AggKind::kNone || c != d.agg_column) {
          primary = {c};
          break;
        }
      }
    }
    RelationPlan plan;
    plan.name = d.name;
    plan.declared_columns = d.columns;
    plan.perm = make_perm(d, primary);
    plan.jcc = primary.size();
    plan.agg = d.agg;
    plan.is_input = d.is_input;
    plan.is_output = d.is_output;
    primary_plan[i] = out.relations_.size();
    plan_for_pattern[{i, primary}] = out.relations_.size();
    out.by_name_[d.name] = out.relations_.size();
    out.relations_.push_back(std::move(plan));
  }
  // Secondary indexes.
  for (std::size_t i = 0; i < ast.decls.size(); ++i) {
    const auto& d = ast.decls[i];
    for (const auto& use : demand[i]) {
      if (plan_for_pattern.contains({i, use.cols})) continue;
      RelationPlan plan;
      plan.name = d.name + "@";
      for (std::size_t k = 0; k < use.cols.size(); ++k) {
        plan.name += (k ? "_" : "") + d.columns[use.cols[k]];
      }
      plan.declared_columns = d.columns;
      plan.perm = make_perm(d, use.cols);
      plan.jcc = use.cols.size();
      plan.agg = d.agg;
      plan.is_input = d.is_input;
      plan.base = static_cast<int>(primary_plan[i]);
      plan_for_pattern[{i, use.cols}] = out.relations_.size();
      out.relations_.push_back(std::move(plan));
    }
  }

  // --- strata ---------------------------------------------------------------------
  // Index-maintenance copy: base stored order -> index stored order.
  const auto index_copy = [&](std::size_t base_id, std::size_t index_id,
                              core::Version version) {
    const auto& base = out.relations_[base_id];
    const auto& index = out.relations_[index_id];
    RulePlan rp;
    rp.is_join = false;
    rp.a = base_id;
    rp.a_version = version;
    rp.target = index_id;
    for (std::size_t s = 0; s < index.arity(); ++s) {
      const auto declared = index.perm[s];
      const auto p = std::find(base.perm.begin(), base.perm.end(), declared);
      rp.head.push_back(core::Expr::col_a(
          static_cast<std::size_t>(std::distance(base.perm.begin(), p))));
    }
    return rp;
  };

  // Secondary indexes per declared relation.
  std::vector<std::vector<std::size_t>> indexes_of(ast.decls.size());
  for (std::size_t p = 0; p < out.relations_.size(); ++p) {
    if (out.relations_[p].base >= 0) {
      // Find the decl by primary id.
      for (std::size_t i = 0; i < ast.decls.size(); ++i) {
        if (primary_plan[i] == static_cast<std::size_t>(out.relations_[p].base)) {
          indexes_of[i].push_back(p);
        }
      }
    }
  }

  // Stratum 0 (if needed): indexes of relations no rule derives (inputs and
  // fact-only relations), filled from kFull after facts are loaded.
  {
    StratumPlan inputs;
    for (std::size_t i = 0; i < ast.decls.size(); ++i) {
      if (a.in_head[i]) continue;
      for (const auto idx : indexes_of[i]) {
        inputs.init.push_back(index_copy(primary_plan[i], idx, core::Version::kFull));
      }
    }
    if (!inputs.init.empty()) out.strata_.push_back(std::move(inputs));
  }

  // One stratum per SCC with rules, in topological (Tarjan finalization)
  // order.
  for (std::size_t scc = 0; scc < a.scc_members.size(); ++scc) {
    StratumPlan stratum;
    const bool recursive = a.scc_recursive[scc];

    for (const auto& rule : ast.rules) {
      const auto h = a.decl_index(rule.head.relation, rule.line);
      if (a.scc_of[h] != static_cast<int>(scc)) continue;

      // Normalize: the positive atom is side A (for antijoins the engine
      // requires the negated relation on side B).
      std::vector<const Atom*> body;
      for (const auto& atom : rule.body) {
        if (!atom.negated) body.push_back(&atom);
      }
      const Atom* negated_atom = nullptr;
      for (const auto& atom : rule.body) {
        if (atom.negated) {
          negated_atom = &atom;
          body.push_back(&atom);
        }
      }
      const bool is_anti = negated_atom != nullptr;

      // Resolve each body atom to its plan (primary or secondary index).
      std::vector<std::size_t> atom_plan(body.size());
      if (body.size() == 2) {
        const auto vars = join_vars(*body[0], *body[1], rule.line);
        for (int k = 0; k < 2; ++k) {
          const auto decl_id =
              a.decl_index(body[static_cast<std::size_t>(k)]->relation, rule.line);
          atom_plan[static_cast<std::size_t>(k)] = plan_for_pattern.at(
              {decl_id, pattern_of(a, *body[static_cast<std::size_t>(k)], vars)});
        }
      } else {
        atom_plan[0] = primary_plan[a.decl_index(body[0]->relation, rule.line)];
      }
      if (is_anti) out.relations_[atom_plan[1]].negated_use = true;

      // Which atoms are recursive (same SCC as the head)?  (A negated atom
      // never is — stratification already rejected that.)
      std::vector<bool> rec(body.size(), false);
      int rec_count = 0;
      for (std::size_t k = 0; k < body.size(); ++k) {
        const auto b = a.decl_index(body[k]->relation, rule.line);
        if (a.scc_of[b] == static_cast<int>(scc)) {
          rec[k] = true;
          ++rec_count;
        }
      }

      // Compile with a given (a_version, b_version, swap) arrangement; the
      // engine's planner may still flip outer/inner at run time — versions
      // here encode semi-naive roles, not shipping order.
      const auto emit = [&](core::Version va, core::Version vb) {
        RulePlan rp;
        rp.line = rule.line;
        rp.target = primary_plan[h];
        rp.anti = is_anti;
        std::map<std::string, Binding> bind;
        std::vector<core::Expr> clauses;
        bind_atom(*body[0], out.relations_[atom_plan[0]], 0, bind, clauses);
        if (body.size() == 2) {
          rp.is_join = true;
          rp.a = atom_plan[0];
          rp.b = atom_plan[1];
          rp.a_version = va;
          rp.b_version = vb;
          bind_atom(*body[1], out.relations_[atom_plan[1]], 1, bind, clauses);
        } else {
          rp.is_join = false;
          rp.a = atom_plan[0];
          rp.a_version = va;
        }
        for (const auto& c : rule.constraints) {
          clauses.push_back(compile_constraint(c, bind));
        }
        std::optional<core::Expr> filter;
        if (is_anti) {
          // Antijoin semantics split the conjuncts: clauses over the
          // positive side gate the rule; clauses touching the negated side
          // define what counts as a blocking match.
          std::vector<core::Expr> pre, against_b;
          for (auto& c : clauses) {
            (c.max_col_b() >= 0 ? against_b : pre).push_back(std::move(c));
          }
          rp.pre_filter = conjoin(std::move(pre));
          filter = conjoin(std::move(against_b));
        } else {
          filter = conjoin(std::move(clauses));
        }
        const auto& target = out.relations_[rp.target];
        for (std::size_t s = 0; s < target.arity(); ++s) {
          rp.head.push_back(
              compile_term(rule.head.args[target.perm[s]], bind, rule.line));
        }
        rp.filter = std::move(filter);
        return rp;
      };

      if (rec_count == 0) {
        stratum.init.push_back(emit(core::Version::kFull, core::Version::kFull));
      } else if (body.size() == 1) {
        stratum.loop.push_back(emit(core::Version::kDelta, core::Version::kFull));
      } else if (rec_count == 1) {
        stratum.loop.push_back(rec[0] ? emit(core::Version::kDelta, core::Version::kFull)
                                      : emit(core::Version::kFull, core::Version::kDelta));
      } else {
        // Non-linear: the standard semi-naive pair.
        stratum.loop.push_back(emit(core::Version::kDelta, core::Version::kFull));
        stratum.loop.push_back(emit(core::Version::kFull, core::Version::kDelta));
      }
    }

    if (stratum.init.empty() && stratum.loop.empty()) continue;  // input-only SCC

    // Index maintenance for this SCC's relations.
    StratumPlan index_stratum;
    for (const auto decl_id : a.scc_members[scc]) {
      for (const auto idx : indexes_of[decl_id]) {
        if (recursive) {
          // Keep the index fresh inside the fixpoint: copy the delta.
          stratum.loop.push_back(
              index_copy(primary_plan[decl_id], idx, core::Version::kDelta));
        } else {
          index_stratum.init.push_back(
              index_copy(primary_plan[decl_id], idx, core::Version::kFull));
        }
      }
    }
    out.strata_.push_back(std::move(stratum));
    if (!index_stratum.init.empty()) out.strata_.push_back(std::move(index_stratum));
  }

  // --- inline facts -----------------------------------------------------------------
  for (const auto& fact : ast.facts) {
    const auto decl_id = a.decl_index(fact.relation, fact.line);
    const auto plan_id = primary_plan[decl_id];
    const auto& plan = out.relations_[plan_id];
    core::Tuple row;
    for (std::size_t s = 0; s < plan.arity(); ++s) {
      row.push_back(fact.args[plan.perm[s]].constant);
    }
    out.facts_[plan_id].push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------------

CompiledProgram::Instance CompiledProgram::instantiate(vmpi::Comm& comm,
                                                       int input_sub_buckets,
                                                       bool input_balanceable) const {
  return Instance(*this, comm, input_sub_buckets, input_balanceable);
}

CompiledProgram::Instance::Instance(const CompiledProgram& plan, vmpi::Comm& comm,
                                    int input_sub_buckets, bool input_balanceable)
    : plan_(&plan), comm_(&comm), program_(std::make_unique<core::Program>(comm)) {
  for (const auto& rp : plan.relations_) {
    const bool input_like =
        rp.is_input || (rp.base >= 0 && plan.relations_[static_cast<std::size_t>(rp.base)].is_input);
    // Antijoin targets must stay single-sub-bucket (see RelationPlan).
    const bool spreadable = input_like && !rp.negated_use;
    rels_.push_back(program_->relation({
        .name = rp.name,
        .arity = rp.arity(),
        .jcc = rp.jcc,
        .dep_arity = rp.aggregated() ? 1u : 0u,
        .aggregator = make_aggregator(rp.agg),
        .sub_buckets = spreadable ? input_sub_buckets : 1,
        .balanceable = spreadable && input_balanceable,
    }));
  }
  for (const auto& sp : plan.strata_) {
    auto& stratum = program_->stratum();
    const auto lower = [&](const RulePlan& rp) -> core::Rule {
      core::OutputSpec spec{.target = rels_[rp.target], .cols = rp.head};
      if (rp.is_join) {
        return core::JoinRule{.a = rels_[rp.a],
                              .a_version = rp.a_version,
                              .b = rels_[rp.b],
                              .b_version = rp.b_version,
                              .out = std::move(spec),
                              .filter = rp.filter,
                              .pre_filter = rp.pre_filter,
                              .anti = rp.anti};
      }
      return core::CopyRule{.src = rels_[rp.a],
                            .version = rp.a_version,
                            .out = std::move(spec),
                            .filter = rp.filter};
    };
    for (const auto& rp : sp.init) stratum.init_rules.push_back(lower(rp));
    for (const auto& rp : sp.loop) stratum.loop_rules.push_back(lower(rp));
  }

  // Inline facts, sliced round-robin (every rank holds the same AST).
  for (const auto& [plan_id, rows] : plan.facts_) {
    std::vector<core::Tuple> slice;
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < rows.size();
         i += static_cast<std::size_t>(comm.size())) {
      slice.push_back(rows[i]);
    }
    rels_[plan_id]->load_facts(slice);
  }
  // Relations with no inline facts still need their collective load when
  // others have facts?  No: load_facts is per-relation collective, and all
  // ranks iterate the same facts_ map in the same order.  Nothing to do.
}

std::size_t CompiledProgram::Instance::plan_id(const std::string& relation) const {
  const auto it = plan_->by_name_.find(relation);
  if (it == plan_->by_name_.end()) {
    throw FrontendError(0, "unknown relation '" + relation + "'");
  }
  return it->second;
}

core::Relation* CompiledProgram::Instance::relation(const std::string& name) {
  return rels_[plan_id(name)];
}

void CompiledProgram::Instance::load(const std::string& relation,
                                     std::span<const core::Tuple> declared_rows) {
  const auto id = plan_id(relation);
  const auto& rp = plan_->relations_[id];
  std::vector<core::Tuple> stored;
  stored.reserve(declared_rows.size());
  for (const auto& row : declared_rows) {
    if (row.size() != rp.arity()) {
      throw FrontendError(0, relation + ": row arity mismatch");
    }
    core::Tuple t;
    for (std::size_t s = 0; s < rp.arity(); ++s) t.push_back(row[rp.perm[s]]);
    stored.push_back(std::move(t));
  }
  rels_[id]->load_facts(stored);
}

core::RunResult CompiledProgram::Instance::run(const core::EngineConfig& cfg) {
  core::Engine engine(*comm_, cfg);
  return engine.run(*program_);
}

std::uint64_t CompiledProgram::Instance::size(const std::string& relation) {
  return rels_[plan_id(relation)]->global_size(core::Version::kFull);
}

std::vector<core::Tuple> CompiledProgram::Instance::gather(const std::string& relation,
                                                           int root) {
  const auto id = plan_id(relation);
  const auto& rp = plan_->relations_[id];
  auto stored = rels_[id]->gather_to_root(root);
  std::vector<core::Tuple> declared;
  declared.reserve(stored.size());
  for (const auto& row : stored) {
    core::Tuple t;
    t = row;  // right size
    for (std::size_t s = 0; s < rp.arity(); ++s) t[rp.perm[s]] = row[s];
    declared.push_back(std::move(t));
  }
  std::sort(declared.begin(), declared.end());
  return declared;
}

}  // namespace paralagg::frontend

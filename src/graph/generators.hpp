#pragma once

// Synthetic graph generators.
//
// The paper evaluates on Twitter-2010, SNAP graphs, and eight SuiteSparse
// matrices — none of which ship with this container.  These generators
// produce graphs with the *properties that drive the paper's effects*:
// power-law degree skew (RMAT — breaks single-sub-bucket distribution,
// Fig. 3), high diameter (grids/chains — long fixpoint tails, Fig. 7), and
// density (ER/complete).  All generators are deterministic in their seed.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple.hpp"

namespace paralagg::graph {

using storage::value_t;

struct Edge {
  value_t src = 0;
  value_t dst = 0;
  value_t weight = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

struct Graph {
  std::string name;
  std::uint64_t num_nodes = 0;  // node ids are in [0, num_nodes)
  std::vector<Edge> edges;

  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }

  /// Add the reverse of every edge (idempotent duplicates are fine; the
  /// engine deduplicates).  CC runs on symmetrized graphs.
  [[nodiscard]] Graph symmetrized() const;

  /// Nodes that appear as a source of at least one edge, ascending.
  [[nodiscard]] std::vector<value_t> source_nodes() const;

  /// `k` deterministic start nodes for SSSP-style queries, spread over the
  /// node-id space but guaranteed to have outgoing edges.
  [[nodiscard]] std::vector<value_t> pick_sources(std::size_t k, std::uint64_t seed = 7) const;

  /// The `k` highest-out-degree nodes (hubs), descending by degree.  Hubs
  /// reach the giant component, which keeps benchmark workloads non-trivial
  /// on power-law graphs where random sources may reach almost nothing.
  [[nodiscard]] std::vector<value_t> pick_hubs(std::size_t k) const;

  /// Max out-degree / average out-degree — the skew that defeats
  /// single-sub-bucket distribution.
  [[nodiscard]] double degree_skew() const;
};

/// Deterministic splitmix64 PRNG (no libc state, identical on all ranks).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return storage::mix64(state_);
  }
  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }
  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

struct RmatParams {
  int scale = 14;        // 2^scale nodes
  int edge_factor = 8;   // edges = edge_factor * nodes
  double a = 0.57, b = 0.19, c = 0.19;  // Graph500 defaults (d = 1-a-b-c)
  value_t max_weight = 100;
  std::uint64_t seed = 1;
};

/// Graph500-style recursive-matrix generator: power-law in/out degrees,
/// the stand-in for Twitter-2010 and other social/web graphs.
Graph make_rmat(const RmatParams& p);

/// Erdős–Rényi G(n, m): m uniform random edges, no degree skew.
Graph make_erdos_renyi(std::uint64_t nodes, std::uint64_t edges, value_t max_weight = 100,
                       std::uint64_t seed = 1);

/// W x H 4-neighbour mesh, both directions per adjacency: high diameter,
/// perfectly balanced — the stand-in for the SuiteSparse FEM matrices.
Graph make_grid(std::uint64_t width, std::uint64_t height, value_t max_weight = 10,
                std::uint64_t seed = 1);

/// Directed path 0 -> 1 -> ... -> n-1: the diameter extreme.
Graph make_chain(std::uint64_t nodes, value_t max_weight = 10, std::uint64_t seed = 1);

/// Hub 0 with `spokes` out-edges: the skew extreme (one bucket holds
/// everything under single-sub-bucket hashing).
Graph make_star(std::uint64_t spokes, value_t max_weight = 10, std::uint64_t seed = 1);

/// Complete directed graph on n nodes (n small!).
Graph make_complete(std::uint64_t nodes, value_t max_weight = 10, std::uint64_t seed = 1);

/// Uniform random tree on n nodes, edges parent -> child.
Graph make_random_tree(std::uint64_t nodes, value_t max_weight = 10, std::uint64_t seed = 1);

/// Union of `k` disjoint ER components (for CC tests with known answers).
Graph make_components(std::uint64_t k, std::uint64_t nodes_per, std::uint64_t edges_per,
                      std::uint64_t seed = 1);

/// Plant a super-hub: rewrite edge sources until `hub` owns
/// round(fraction * num_edges()) out-edges (exactly — unless it already
/// had more, which stays).  Rewritten edges are chosen by a
/// seed-deterministic shuffle over the non-hub-sourced edges, so every
/// rank planting with the same arguments gets the identical graph.  A
/// rewritten self-loop's destination is bumped to the next node.  Models
/// the celebrity vertex that concentrates join work on one key
/// (bench/skew_join); appends "+hub" to the graph name.
void plant_hub(Graph& g, double fraction, value_t hub, std::uint64_t seed = 1);

}  // namespace paralagg::graph

#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace paralagg::graph {

void write_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << "# " << g.name << " nodes=" << g.num_nodes << " edges=" << g.edges.size() << "\n";
  for (const auto& e : g.edges) {
    out << e.src << " " << e.dst << " " << e.weight << "\n";
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph read_edge_list(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  Graph g;
  g.name = name;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    Edge e;
    if (!(ss >> e.src >> e.dst)) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": malformed edge");
    }
    if (!(ss >> e.weight)) e.weight = 1;
    g.edges.push_back(e);
    const auto hi = std::max(e.src, e.dst) + 1;
    if (hi > g.num_nodes) g.num_nodes = hi;
  }
  return g;
}

}  // namespace paralagg::graph

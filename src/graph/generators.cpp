#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace paralagg::graph {

Graph Graph::symmetrized() const {
  Graph g;
  g.name = name + "-sym";
  g.num_nodes = num_nodes;
  g.edges.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    g.edges.push_back(e);
    g.edges.push_back(Edge{e.dst, e.src, e.weight});
  }
  return g;
}

std::vector<value_t> Graph::source_nodes() const {
  std::vector<value_t> srcs;
  srcs.reserve(edges.size());
  for (const auto& e : edges) srcs.push_back(e.src);
  std::sort(srcs.begin(), srcs.end());
  srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
  return srcs;
}

std::vector<value_t> Graph::pick_sources(std::size_t k, std::uint64_t seed) const {
  const auto srcs = source_nodes();
  std::vector<value_t> out;
  if (srcs.empty()) return out;
  Rng rng(seed);
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(srcs[rng.below(srcs.size())]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<value_t> Graph::pick_hubs(std::size_t k) const {
  std::unordered_map<value_t, std::uint64_t> deg;
  for (const auto& e : edges) ++deg[e.src];
  std::vector<std::pair<std::uint64_t, value_t>> by_degree;
  by_degree.reserve(deg.size());
  for (const auto& [node, d] : deg) by_degree.emplace_back(d, node);
  // Descending by degree, ties toward the smaller id (deterministic).
  std::sort(by_degree.begin(), by_degree.end(),
            [](const auto& a, const auto& b) {
              return a.first > b.first || (a.first == b.first && a.second < b.second);
            });
  std::vector<value_t> out;
  for (std::size_t i = 0; i < by_degree.size() && i < k; ++i) {
    out.push_back(by_degree[i].second);
  }
  return out;
}

double Graph::degree_skew() const {
  if (edges.empty()) return 1.0;
  std::unordered_map<value_t, std::uint64_t> deg;
  std::uint64_t max_deg = 0;
  for (const auto& e : edges) max_deg = std::max(max_deg, ++deg[e.src]);
  const double avg = static_cast<double>(edges.size()) / static_cast<double>(deg.size());
  return static_cast<double>(max_deg) / avg;
}

Graph make_rmat(const RmatParams& p) {
  Graph g;
  g.name = "rmat-s" + std::to_string(p.scale) + "-e" + std::to_string(p.edge_factor);
  g.num_nodes = 1ULL << p.scale;
  const std::uint64_t m = g.num_nodes * static_cast<std::uint64_t>(p.edge_factor);
  g.edges.reserve(m);
  Rng rng(p.seed);
  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t row = 0, col = 0;
    for (int level = 0; level < p.scale; ++level) {
      const double r = rng.uniform();
      row <<= 1;
      col <<= 1;
      if (r < p.a) {
        // top-left quadrant
      } else if (r < ab) {
        col |= 1;
      } else if (r < abc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row == col) col = (col + 1) % g.num_nodes;  // drop self loops
    g.edges.push_back(Edge{row, col, 1 + rng.below(p.max_weight)});
  }
  return g;
}

Graph make_erdos_renyi(std::uint64_t nodes, std::uint64_t edges, value_t max_weight,
                       std::uint64_t seed) {
  Graph g;
  g.name = "er-" + std::to_string(nodes) + "-" + std::to_string(edges);
  g.num_nodes = nodes;
  g.edges.reserve(edges);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < edges; ++i) {
    const value_t u = rng.below(nodes);
    value_t v = rng.below(nodes);
    if (u == v) v = (v + 1) % nodes;
    g.edges.push_back(Edge{u, v, 1 + rng.below(max_weight)});
  }
  return g;
}

Graph make_grid(std::uint64_t width, std::uint64_t height, value_t max_weight,
                std::uint64_t seed) {
  Graph g;
  g.name = "grid-" + std::to_string(width) + "x" + std::to_string(height);
  g.num_nodes = width * height;
  Rng rng(seed);
  const auto id = [&](std::uint64_t x, std::uint64_t y) { return y * width + x; };
  for (std::uint64_t y = 0; y < height; ++y) {
    for (std::uint64_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        const value_t w = 1 + rng.below(max_weight);
        g.edges.push_back(Edge{id(x, y), id(x + 1, y), w});
        g.edges.push_back(Edge{id(x + 1, y), id(x, y), w});
      }
      if (y + 1 < height) {
        const value_t w = 1 + rng.below(max_weight);
        g.edges.push_back(Edge{id(x, y), id(x, y + 1), w});
        g.edges.push_back(Edge{id(x, y + 1), id(x, y), w});
      }
    }
  }
  return g;
}

Graph make_chain(std::uint64_t nodes, value_t max_weight, std::uint64_t seed) {
  Graph g;
  g.name = "chain-" + std::to_string(nodes);
  g.num_nodes = nodes;
  Rng rng(seed);
  for (std::uint64_t i = 0; i + 1 < nodes; ++i) {
    g.edges.push_back(Edge{i, i + 1, 1 + rng.below(max_weight)});
  }
  return g;
}

Graph make_star(std::uint64_t spokes, value_t max_weight, std::uint64_t seed) {
  Graph g;
  g.name = "star-" + std::to_string(spokes);
  g.num_nodes = spokes + 1;
  Rng rng(seed);
  for (std::uint64_t i = 1; i <= spokes; ++i) {
    g.edges.push_back(Edge{0, i, 1 + rng.below(max_weight)});
  }
  return g;
}

Graph make_complete(std::uint64_t nodes, value_t max_weight, std::uint64_t seed) {
  Graph g;
  g.name = "complete-" + std::to_string(nodes);
  g.num_nodes = nodes;
  Rng rng(seed);
  for (std::uint64_t u = 0; u < nodes; ++u) {
    for (std::uint64_t v = 0; v < nodes; ++v) {
      if (u != v) g.edges.push_back(Edge{u, v, 1 + rng.below(max_weight)});
    }
  }
  return g;
}

Graph make_random_tree(std::uint64_t nodes, value_t max_weight, std::uint64_t seed) {
  Graph g;
  g.name = "tree-" + std::to_string(nodes);
  g.num_nodes = nodes;
  Rng rng(seed);
  for (std::uint64_t i = 1; i < nodes; ++i) {
    g.edges.push_back(Edge{rng.below(i), i, 1 + rng.below(max_weight)});
  }
  return g;
}

Graph make_components(std::uint64_t k, std::uint64_t nodes_per, std::uint64_t edges_per,
                      std::uint64_t seed) {
  Graph g;
  g.name = "components-" + std::to_string(k) + "x" + std::to_string(nodes_per);
  g.num_nodes = k * nodes_per;
  Rng rng(seed);
  for (std::uint64_t c = 0; c < k; ++c) {
    const std::uint64_t base = c * nodes_per;
    // A spanning chain keeps each component connected, then extra edges.
    for (std::uint64_t i = 0; i + 1 < nodes_per; ++i) {
      g.edges.push_back(Edge{base + i, base + i + 1, 1});
    }
    for (std::uint64_t i = 0; i < edges_per; ++i) {
      const value_t u = base + rng.below(nodes_per);
      value_t v = base + rng.below(nodes_per);
      if (u == v) v = base + (v - base + 1) % nodes_per;
      g.edges.push_back(Edge{u, v, 1});
    }
  }
  return g;
}

void plant_hub(Graph& g, double fraction, value_t hub, std::uint64_t seed) {
  const auto target =
      static_cast<std::uint64_t>(fraction * static_cast<double>(g.num_edges()) + 0.5);
  std::uint64_t current = 0;
  std::vector<std::uint64_t> rewritable;  // indices of edges not sourced at the hub
  rewritable.reserve(g.edges.size());
  for (std::uint64_t i = 0; i < g.edges.size(); ++i) {
    if (g.edges[i].src == hub) {
      ++current;
    } else {
      rewritable.push_back(i);
    }
  }
  // Fisher–Yates over the rewritable indices: which edges turn into hub
  // out-edges is a function of (seed, edge order) only — identical on
  // every rank, independent of rank count.
  Rng rng(seed);
  std::uint64_t need = target > current ? target - current : 0;
  need = std::min<std::uint64_t>(need, rewritable.size());
  for (std::uint64_t i = 0; i < need; ++i) {
    const std::uint64_t j = i + rng.below(rewritable.size() - i);
    std::swap(rewritable[i], rewritable[j]);
    Edge& e = g.edges[rewritable[i]];
    e.src = hub;
    if (e.dst == hub) e.dst = (hub + 1) % g.num_nodes;  // no self loops
  }
  g.name += "+hub";
}

}  // namespace paralagg::graph

#pragma once

// The dataset zoo: container-scale stand-ins for the paper's graphs.
//
// The paper evaluates on Twitter-2010 (1.47B edges), three SNAP graphs
// (Table I) and eight SuiteSparse matrices (Table II).  None are
// redistributable inside this container at size, so each gets a synthetic
// stand-in that preserves the property the experiment actually exercises:
//
//   * social/web graphs  -> RMAT (power-law skew; breaks 1-sub-bucket
//                           distribution, drives Figs. 2-6)
//   * FEM/CFD meshes     -> grids (high diameter; hundreds of fixpoint
//                           iterations, the Table II "Iters" column and
//                           the Fig. 7 long tail)
//   * dense solver mats  -> Erdős–Rényi (low diameter, high volume)
//
// Edge counts are scaled down uniformly (the paper's 9.8M–640M range maps
// to roughly 25k–280k) but keep their relative order, so "bigger graphs
// scale better" remains observable.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace paralagg::graph {

struct ZooEntry {
  std::string name;          // stand-in name used in our tables
  std::string paper_graph;   // the graph it stands in for
  std::uint64_t paper_edges; // |E| reported in the paper
  std::string character;     // which property the stand-in preserves
  std::function<Graph()> make;
};

/// The eight Table II graphs, in the paper's row order.
const std::vector<ZooEntry>& table2_zoo();

/// Table I graphs.
Graph make_livejournal_like();
Graph make_orkut_like();
Graph make_topcats_like();

/// Twitter-2010 stand-in: RMAT with raised `a` for extra hub skew.
/// `scale`/`edge_factor` let the scaling benches grow it.
Graph make_twitter_like(int scale = 14, int edge_factor = 12);

/// Twitter stand-in for the *load-balancing* experiments (Figs. 3/4): RMAT
/// plus one celebrity vertex with `celebrity_degree` out-edges.  Twitter's
/// defining property for §IV-C is that the top account's degree exceeds
/// the average per-rank tuple load at scale (3M followers vs ~180k
/// tuples/rank at 16k ranks); `celebrity_degree` recreates that ratio at
/// container-feasible rank counts.
Graph make_celebrity_like(int scale = 14, int edge_factor = 8,
                          std::uint64_t celebrity_degree = 50'000);

}  // namespace paralagg::graph

#pragma once

// Edge-list file IO.
//
// Text format, one edge per line: `src dst [weight]`, '#'-prefixed comment
// lines ignored — the format SNAP and SuiteSparse exports use, so a user
// with the paper's real datasets can feed them straight in.

#include <string>

#include "graph/generators.hpp"

namespace paralagg::graph {

/// Write `g` as a text edge list (with a header comment).
void write_edge_list(const Graph& g, const std::string& path);

/// Parse a text edge list; `name` labels the result.  Node count is
/// 1 + max id seen.  Throws std::runtime_error on unreadable files or
/// malformed lines.
Graph read_edge_list(const std::string& path, const std::string& name = "file");

}  // namespace paralagg::graph

#include "graph/zoo.hpp"

namespace paralagg::graph {

namespace {

Graph named(Graph g, const std::string& name) {
  g.name = name;
  return g;
}

Graph rmat_named(const std::string& name, int scale, int ef, double a, std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = ef;
  p.a = a;
  const double rest = (1.0 - a) / 3.0;
  p.b = p.c = rest;
  p.seed = seed;
  return named(make_rmat(p), name);
}

}  // namespace

const std::vector<ZooEntry>& table2_zoo() {
  static const std::vector<ZooEntry> zoo = {
      {"flickr-like", "flickr", 9'800'000, "social graph, strong hub skew, short diameter",
       [] { return rmat_named("flickr-like", 12, 6, 0.57, 11); }},
      {"freescale-like", "Freescale1", 19'000'000,
       "circuit mesh, balanced degrees, ~126-iteration fixpoint",
       [] { return named(make_grid(100, 100, 10, 12), "freescale-like"); }},
      {"wiki-like", "wiki", 37'200'000, "web graph, heavy skew, deep link chains",
       [] { return rmat_named("wiki-like", 13, 7, 0.60, 13); }},
      {"wb-edu-like", "wb-edu", 57'200'000, "web crawl, skewed, many reachable pairs",
       [] { return rmat_named("wb-edu-like", 13, 10, 0.57, 14); }},
      {"ml-geer-like", "ML_Geer", 110'800'000,
       "FEM mesh, highest iteration count in the suite (paper: 500)",
       [] { return named(make_grid(170, 170, 10, 15), "ml-geer-like"); }},
      {"hv15r-like", "HV15R", 283'100'000, "dense CFD matrix, low diameter (paper: 75 iters)",
       [] { return named(make_erdos_renyi(1ULL << 14, 200'000, 100, 16), "hv15r-like"); }},
      {"arabic-like", "arabic", 640'000'000, "largest crawl in the suite, extreme hub skew",
       [] { return rmat_named("arabic-like", 14, 17, 0.62, 17); }},
      {"stokes-like", "stokes", 349'300'000, "FEM mesh, long fixpoint (paper: 367 iters)",
       [] { return named(make_grid(160, 160, 10, 18), "stokes-like"); }},
  };
  return zoo;
}

Graph make_livejournal_like() { return rmat_named("livejournal-like", 13, 8, 0.57, 21); }

Graph make_orkut_like() { return rmat_named("orkut-like", 12, 16, 0.55, 22); }

Graph make_topcats_like() { return rmat_named("topcats-like", 11, 8, 0.57, 23); }

Graph make_twitter_like(int scale, int edge_factor) {
  return rmat_named("twitter-like", scale, edge_factor, 0.65, 42);
}

Graph make_celebrity_like(int scale, int edge_factor, std::uint64_t celebrity_degree) {
  Graph g = rmat_named("celebrity-like", scale, edge_factor, 0.57, 43);
  Rng rng(4242);
  // The celebrity gets a mid-range id so it carries no special hash.
  const value_t celebrity = g.num_nodes / 3;
  for (std::uint64_t i = 0; i < celebrity_degree; ++i) {
    value_t follower = rng.below(g.num_nodes);
    if (follower == celebrity) follower = (follower + 1) % g.num_nodes;
    g.edges.push_back(Edge{celebrity, follower, 1 + rng.below(100)});
  }
  return g;
}

}  // namespace paralagg::graph

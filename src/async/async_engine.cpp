#include "async/async_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "async/termination.hpp"
#include "core/exchange_router.hpp"
#include "core/phase_scope.hpp"
#include "core/ra_op.hpp"
#include "core/relation.hpp"
#include "core/wire.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::async {

namespace {

using core::Phase;
using core::PhaseScope;
using core::Relation;
using core::Tuple;
using core::value_t;
using core::Version;

// Application-message tags of the async loop.  Disjoint from the Bruck
// relay block (0x42000000+k, unused here — no collectives in the loop) and
// from the TerminationDetector's control block.
constexpr int kTagStage = 0x51A50000;  // generated rows -> owner rank
constexpr int kTagProbe = 0x51A50001;  // delta rows -> static side's bucket ranks
// Stale-synchronous mode: both frame kinds open with an epoch word inside
// the CRC-sealed payload, and exactly one frame of each kind flows per
// (source, destination, epoch) — that is what makes the receiver's
// per-source epoch ledger a complete exactly-once filter.
constexpr int kTagSspProbe = 0x51A50002;    // epoch-tagged scan rows
constexpr int kTagSspPartial = 0x51A50003;  // epoch-tagged pre-folded partials

void push_unique(std::vector<Relation*>& v, Relation* r) {
  if (r != nullptr && std::find(v.begin(), v.end(), r) == v.end()) v.push_back(r);
}

std::vector<Relation*> targets_of(const std::vector<core::Rule>& rules) {
  std::vector<Relation*> out;
  for (const auto& rule : rules) {
    std::visit([&](const auto& r) { push_unique(out, r.out.target); }, rule);
  }
  return out;
}

std::uint64_t collective_calls(const vmpi::CommStats& s) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < vmpi::kOpCount; ++i) {
    if (static_cast<vmpi::Op>(i) == vmpi::Op::kP2P) continue;
    total += s.calls[i];
  }
  return total;
}

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One stratum's nonblocking loop on one rank.  Owns the per-destination
/// outbound buffers and the termination detector; lives on the stack of
/// AsyncEngine::run_stratum.
class StratumLoop {
 public:
  StratumLoop(vmpi::Comm& comm, const AsyncConfig& cfg, core::RankProfile& profile,
              AsyncLoopStats& ls, const core::Stratum& stratum, int detector_tag_base)
      : comm_(comm),
        cfg_(cfg),
        profile_(profile),
        ls_(ls),
        detector_(comm, detector_tag_base),
        targets_(targets_of(stratum.loop_rules)),
        nranks_(static_cast<std::size_t>(comm.size())) {
    fresh_.assign(targets_.size(), false);
    stage_out_.resize(targets_.size() * nranks_);
    app_seq_.assign(nranks_, 0);
    seen_seqs_.resize(nranks_);
    for (const auto& rule : stratum.loop_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        joins_.push_back(JoinTask{j, target_index(j->a), target_index(j->out.target)});
      } else {
        const auto& c = std::get<core::CopyRule>(rule);
        copies_.push_back(CopyTask{&c, target_index(c.src), target_index(c.out.target)});
      }
    }
    probe_out_.resize(joins_.size() * nranks_);
  }

  /// Loop until the detector announces global quiescence.  No collectives.
  void run() {
    // Round 0's frontier pre-exists: init rules and load_facts leave their
    // seeds in the delta trees, and materialize() would clear them — so
    // consume what is already there instead of materializing first.
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      fresh_[i] = targets_[i]->local_size(Version::kDelta) > 0;
    }

    // Progress watchdog.  The per-recv watchdog inside Comm only catches
    // a rank parked with *nothing* arriving; a dropped app message leaves
    // the Safra counters permanently unbalanced, so probes keep failing
    // and tokens keep circulating — every blocking recv returns promptly
    // and the loop livelocks instead of hanging.  App-level progress
    // (computation or accepted app messages) is the signal that is
    // actually starved, so that is what the deadline watches.
    const double deadline = comm_.watchdog_seconds();
    last_progress_ = wall_now();

    while (!detector_.terminated()) {
      if (drain_app() > 0) last_progress_ = wall_now();
      if (local_round()) {
        // A productive local round is the async analogue of a BSP
        // iteration boundary: release injected delays, apply epoch faults.
        comm_.advance_epoch();
        last_progress_ = wall_now();
        continue;
      }

      // Nothing to compute: push every buffered row out, then re-check the
      // mailbox — a message may have raced in while we were flushing.
      flush_all();
      if (drain_app() > 0) {
        last_progress_ = wall_now();
        continue;
      }

      // Passive: all work done, all sends flushed.  Move the termination
      // protocol along, then park in a blocking receive — the next app
      // message reactivates us, a token gets forwarded on the next pass,
      // and the terminate announcement breaks the loop.
      {
        PhaseScope scope(comm_, profile_, Phase::kOther);
        detector_.poll();
        detector_.try_terminate();
      }
      if (detector_.terminated()) break;
      if (deadline > 0 && wall_now() - last_progress_ > deadline) {
        comm_.world().fault_abort();
        throw vmpi::TimeoutError("async loop (termination starved, no app progress)",
                                 deadline, comm_.stats());
      }
      blocking_wait();
    }
  }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t staged_total() const { return staged_total_; }
  [[nodiscard]] const TerminationDetector::Stats& detector_stats() const {
    return detector_.stats();
  }

 private:
  struct JoinTask {
    const core::JoinRule* rule;
    std::size_t src_idx;  // index of rule->a in targets_
    std::size_t out_idx;  // index of rule->out.target in targets_
  };
  struct CopyTask {
    const core::CopyRule* rule;
    std::size_t src_idx;
    std::size_t out_idx;
  };

  std::size_t target_index(Relation* r) const {
    const auto it = std::find(targets_.begin(), targets_.end(), r);
    assert(it != targets_.end() && "check_supported admitted a foreign relation");
    return static_cast<std::size_t>(it - targets_.begin());
  }

  /// One pass over the loop targets: fold staged arrivals, join each fresh
  /// delta frontier, batch the outputs.  Returns whether anything happened.
  bool local_round() {
    bool any = false;
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      Relation* t = targets_[i];
      if (fresh_[i]) {
        process_delta(i);
        fresh_[i] = false;
        any = true;
      }
      if (t->staged_count() > 0) {
        {
          PhaseScope scope(comm_, profile_, Phase::kDedupAgg);
          const auto m = t->materialize();
          profile_.add_work(Phase::kDedupAgg, m.staged);
          staged_total_ += m.staged;
          fresh_[i] = m.delta_size > 0;
        }
        if (fresh_[i]) {
          process_delta(i);
          fresh_[i] = false;
        }
        any = true;
      }
    }
    if (any) {
      ++rounds_;
      ++ls_.rounds;
      if (rounds_ > cfg_.max_rounds) {
        throw std::runtime_error("async engine: stratum exceeded max_rounds (" +
                                 std::to_string(cfg_.max_rounds) + ") local rounds");
      }
      maybe_flush();
      profile_.end_iteration();
    }
    return any;
  }

  /// Run every loop rule whose recursive side is targets_[target_idx] over
  /// that relation's current delta tree.
  void process_delta(std::size_t target_idx) {
    PhaseScope scope(comm_, profile_, Phase::kLocalJoin);
    std::uint64_t work = 0;

    for (std::size_t j = 0; j < joins_.size(); ++j) {
      const JoinTask& task = joins_[j];
      if (task.src_idx != target_idx) continue;
      const Relation& a = *task.rule->a;
      const Relation& b = *task.rule->b;
      const std::size_t arity = a.arity();
      // The delta tree iterates in key order, so the local probes below
      // are already sorted by join prefix — one monotone cursor walks b's
      // full tree alongside the delta scan.  b is static for the whole
      // stratum (check_supported), so the cursor stays valid.
      auto cur = b.tree(Version::kFull).cursor();
      // Replicate each fresh delta row to every rank holding a sub-bucket
      // of the static side's bucket — the point-to-point double of the BSP
      // intra-bucket exchange, paid per row instead of per iteration.
      a.tree(Version::kDelta).for_each([&](std::span<const value_t> row) {
        const auto bucket = a.bucket_of(row);
        b.ranks_of_bucket(bucket, dest_scratch_);
        for (int d : dest_scratch_) {
          ++work;
          if (d == comm_.rank()) {
            probe_row(task, row, cur);
          } else {
            append_probe(j, static_cast<std::size_t>(d), row, arity);
          }
        }
      });
    }

    static const Tuple kEmpty;
    for (const CopyTask& task : copies_) {
      if (task.src_idx != target_idx) continue;
      const core::CopyRule& rule = *task.rule;
      rule.src->tree(Version::kDelta).for_each([&](std::span<const value_t> row) {
        ++work;
        if (rule.filter && rule.filter->eval(row, kEmpty.view()) == 0) return;
        out_scratch_.clear();
        for (const auto& e : rule.out.cols) {
          out_scratch_.push_back(e.eval(row, kEmpty.view()));
        }
        route_output(task.out_idx, out_scratch_.view());
      });
    }
    profile_.add_work(Phase::kLocalJoin, work);
  }

  /// Join one delta row of the recursive side against the local partition
  /// of the static side; outputs go to their owners.  `cur` must belong to
  /// b's full tree; callers reuse it across rows so sorted probe streams
  /// resume from the current leaf instead of re-descending.
  void probe_row(const JoinTask& task, std::span<const value_t> outer_row,
                 storage::TupleBTree::Cursor& cur) {
    const core::JoinRule& rule = *task.rule;
    const std::size_t jcc = rule.a->jcc();
    const auto prefix = outer_row.first(jcc);
    for (cur.seek(prefix); cur.valid() && cur.matches(prefix); cur.next()) {
      const auto irow = cur.row();
      if (rule.filter && rule.filter->eval(outer_row, irow) == 0) continue;
      out_scratch_.clear();
      out_scratch_.reserve(rule.out.cols.size());
      for (const auto& e : rule.out.cols) out_scratch_.push_back(e.eval(outer_row, irow));
      route_output(task.out_idx, out_scratch_.view());
    }
  }

  void route_output(std::size_t out_idx, std::span<const value_t> row) {
    Relation* t = targets_[out_idx];
    const int dst = t->owner_rank(row);
    if (dst == comm_.rank()) {
      // Loopback: self-owned rows join the staging area directly and are
      // folded by the next materialize on this rank — zero communication.
      t->stage(row);
      ++ls_.rows_loopback;
      return;
    }
    auto& buf = stage_out_[out_idx * nranks_ + static_cast<std::size_t>(dst)];
    buf.insert(buf.end(), row.begin(), row.end());
    if (cfg_.routing == AsyncRouting::kOwnerDirect &&
        buf.size() >= cfg_.batch_rows * t->arity()) {
      send_stage_bucket(out_idx, static_cast<std::size_t>(dst));
    }
  }

  void append_probe(std::size_t join_idx, std::size_t dest, std::span<const value_t> row,
                    std::size_t arity) {
    auto& buf = probe_out_[join_idx * nranks_ + dest];
    buf.insert(buf.end(), row.begin(), row.end());
    if (cfg_.routing == AsyncRouting::kOwnerDirect && buf.size() >= cfg_.batch_rows * arity) {
      send_probe_bucket(join_idx, dest);
    }
  }

  // -- outbound ---------------------------------------------------------------

  /// Seal and ship one app frame.  The wire trailer's sequence number is
  /// per destination (stage and probe tags share the counter), so every
  /// frame this rank ever sends to `dst` is uniquely numbered — which is
  /// what lets the receiver recognize injected duplicates.
  void send_app(int dst, int tag, vmpi::TypedWriter<value_t>& w) {
    core::wire::seal_frame(w, app_seq_[static_cast<std::size_t>(dst)]++);
    comm_.isend(dst, tag, w.take());
    detector_.on_app_send();
    ++ls_.messages_sent;
  }

  void send_stage_bucket(std::size_t out_idx, std::size_t dest) {
    auto& buf = stage_out_[out_idx * nranks_ + dest];
    if (buf.empty()) return;
    PhaseScope scope(comm_, profile_, Phase::kAllToAll);
    const auto count = buf.size() / targets_[out_idx]->arity();
    vmpi::TypedWriter<value_t> w(buf.size() + 2);
    w.put(static_cast<value_t>(out_idx));
    w.put(static_cast<value_t>(count));
    w.put_span(std::span<const value_t>(buf));
    send_app(static_cast<int>(dest), kTagStage, w);
    ls_.stage_rows_sent += count;
    profile_.add_work(Phase::kAllToAll, count);
    buf.clear();
  }

  void send_probe_bucket(std::size_t join_idx, std::size_t dest) {
    auto& buf = probe_out_[join_idx * nranks_ + dest];
    if (buf.empty()) return;
    PhaseScope scope(comm_, profile_, Phase::kAllToAll);
    const auto count = buf.size() / joins_[join_idx].rule->a->arity();
    vmpi::TypedWriter<value_t> w(buf.size() + 2);
    w.put(static_cast<value_t>(join_idx));
    w.put(static_cast<value_t>(count));
    w.put_span(std::span<const value_t>(buf));
    send_app(static_cast<int>(dest), kTagProbe, w);
    ls_.probe_rows_sent += count;
    profile_.add_work(Phase::kAllToAll, count);
    buf.clear();
  }

  void maybe_flush() {
    ++stale_rounds_;
    // max_staleness == 0 is rejected by validate_config before any loop
    // starts (it used to be silently clamped to 1 here, which lied about
    // the configuration actually in effect).
    if (cfg_.routing == AsyncRouting::kDense || stale_rounds_ >= cfg_.max_staleness) {
      flush_all();
    }
  }

  /// Ship everything buffered: one message per (kind, destination), frames
  /// for all routes concatenated — the same framing a router flush uses,
  /// minus the collective.
  void flush_all() {
    stale_rounds_ = 0;
    const auto me = static_cast<std::size_t>(comm_.rank());
    for (std::size_t d = 0; d < nranks_; ++d) {
      if (d == me) continue;
      {
        vmpi::TypedWriter<value_t> w;
        std::uint64_t rows = 0;
        for (std::size_t i = 0; i < targets_.size(); ++i) {
          auto& buf = stage_out_[i * nranks_ + d];
          if (buf.empty()) continue;
          const auto count = buf.size() / targets_[i]->arity();
          w.put(static_cast<value_t>(i));
          w.put(static_cast<value_t>(count));
          w.put_span(std::span<const value_t>(buf));
          rows += count;
          buf.clear();
        }
        if (!w.empty()) {
          PhaseScope scope(comm_, profile_, Phase::kAllToAll);
          send_app(static_cast<int>(d), kTagStage, w);
          ls_.stage_rows_sent += rows;
          profile_.add_work(Phase::kAllToAll, rows);
        }
      }
      {
        vmpi::TypedWriter<value_t> w;
        std::uint64_t rows = 0;
        for (std::size_t j = 0; j < joins_.size(); ++j) {
          auto& buf = probe_out_[j * nranks_ + d];
          if (buf.empty()) continue;
          const auto count = buf.size() / joins_[j].rule->a->arity();
          w.put(static_cast<value_t>(j));
          w.put(static_cast<value_t>(count));
          w.put_span(std::span<const value_t>(buf));
          rows += count;
          buf.clear();
        }
        if (!w.empty()) {
          PhaseScope scope(comm_, profile_, Phase::kAllToAll);
          send_app(static_cast<int>(d), kTagProbe, w);
          ls_.probe_rows_sent += rows;
          profile_.add_work(Phase::kAllToAll, rows);
        }
      }
    }
  }

  // -- inbound ----------------------------------------------------------------

  /// Open, validate, and dedup-filter one inbound app frame.  Returns
  /// false (counting it) when the frame is an injected duplicate; throws
  /// vmpi::FrameDecodeError on corruption.  The Safra receive is recorded
  /// here, for accepted frames only — the sender counted each message
  /// once, so discarding the injected copies BEFORE the detector sees
  /// them is what keeps the counters balanced and termination reachable
  /// under duplication.
  bool accept_app(int src, const vmpi::Bytes& bytes, core::wire::Frame& frame) {
    frame = core::wire::open_frame(bytes);
    if (frame.empty()) {
      throw vmpi::FrameDecodeError("async: app frame has no payload");
    }
    if (!seen_seqs_[static_cast<std::size_t>(src)].insert(frame.seq).second) {
      comm_.stats().dup_frames_discarded += 1;
      return false;
    }
    detector_.on_app_receive();
    ++ls_.messages_received;
    return true;
  }

  std::size_t drain_app() {
    std::size_t n = 0;
    n += comm_.drain(kTagStage, [&](int src, vmpi::Bytes b) {
      core::wire::Frame frame;
      if (accept_app(src, b, frame)) on_stage(frame.payload);
    });
    n += comm_.drain(kTagProbe, [&](int src, vmpi::Bytes b) {
      core::wire::Frame frame;
      if (accept_app(src, b, frame)) on_probe(frame.payload);
    });
    return n;
  }

  void on_stage(std::span<const std::byte> payload) {
    PhaseScope scope(comm_, profile_, Phase::kDedupAgg);
    vmpi::TypedReader<value_t> r(payload);
    std::uint64_t rows = 0;
    while (!r.done()) {
      if (r.remaining() < 2) {
        throw vmpi::FrameDecodeError("async: stage frame truncated before row count");
      }
      const auto idx = static_cast<std::size_t>(r.get());
      if (idx >= targets_.size()) {
        throw vmpi::FrameDecodeError("async: stage frame names an unknown route");
      }
      Relation& rel = *targets_[idx];
      const auto count = static_cast<std::size_t>(r.get());
      if (count > r.remaining() / rel.arity()) {
        throw vmpi::FrameDecodeError("async: stage frame row count overruns payload");
      }
      rel.stage_rows(r.take_span(count * rel.arity()));
      rows += count;
    }
    profile_.add_work(Phase::kDedupAgg, rows);
  }

  void on_probe(std::span<const std::byte> payload) {
    PhaseScope scope(comm_, profile_, Phase::kLocalJoin);
    vmpi::TypedReader<value_t> r(payload);
    std::uint64_t rows = 0;
    while (!r.done()) {
      if (r.remaining() < 2) {
        throw vmpi::FrameDecodeError("async: probe frame truncated before row count");
      }
      const auto j = static_cast<std::size_t>(r.get());
      if (j >= joins_.size()) {
        throw vmpi::FrameDecodeError("async: probe frame names an unknown join rule");
      }
      const JoinTask& task = joins_[j];
      const std::size_t arity = task.rule->a->arity();
      const auto count = static_cast<std::size_t>(r.get());
      if (count > r.remaining() / arity) {
        throw vmpi::FrameDecodeError("async: probe frame row count overruns payload");
      }
      const auto flat = r.take_span(count * arity);
      // Frames are concatenations of delta scans, so rows arrive in sorted
      // runs; one cursor rides the runs and re-descends only at run seams.
      auto cur = task.rule->b->tree(Version::kFull).cursor();
      for (std::size_t off = 0; off < flat.size(); off += arity) {
        probe_row(task, flat.subspan(off, arity), cur);
      }
      rows += count;
    }
    profile_.add_work(Phase::kLocalJoin, rows);
  }

  /// Park until *any* message arrives and dispatch it by tag.
  void blocking_wait() {
    const double t0 = wall_now();
    int src = 0;
    int tag = 0;
    const vmpi::Bytes bytes = comm_.recv(vmpi::kAnySource, vmpi::kAnyTag, &src, &tag);
    ls_.blocked_seconds += wall_now() - t0;
    if (detector_.owns_tag(tag)) {
      detector_.on_control(src, tag, bytes);
      return;
    }
    if (tag == kTagStage || tag == kTagProbe) {
      core::wire::Frame frame;
      if (!accept_app(src, bytes, frame)) return;
      if (tag == kTagStage) {
        on_stage(frame.payload);
      } else {
        on_probe(frame.payload);
      }
      return;
    }
    // Foreign tag: an injected delay can carry a control message from an
    // earlier stratum's detector (its tag block is retired) across the
    // stratum boundary.  Stale by construction — discard, don't abort.
    comm_.stats().dup_frames_discarded += 1;
  }

  vmpi::Comm& comm_;
  const AsyncConfig& cfg_;
  core::RankProfile& profile_;
  AsyncLoopStats& ls_;
  TerminationDetector detector_;

  std::vector<Relation*> targets_;
  std::vector<JoinTask> joins_;
  std::vector<CopyTask> copies_;
  std::vector<bool> fresh_;  // targets with an unconsumed delta frontier

  std::size_t nranks_;
  // Flat row buffers, route-major: [idx * nranks + dest], like the router.
  std::vector<std::vector<value_t>> stage_out_;
  std::vector<std::vector<value_t>> probe_out_;

  std::uint64_t rounds_ = 0;
  std::uint64_t staged_total_ = 0;
  std::size_t stale_rounds_ = 0;
  std::vector<int> dest_scratch_;
  Tuple out_scratch_;

  // Fault hardening: per-destination send sequence (stamped into the wire
  // trailer), per-source set of accepted sequences (injected duplicates
  // are discarded before the termination detector counts them), and the
  // progress-watchdog clock.
  std::vector<value_t> app_seq_;
  std::vector<std::unordered_set<value_t>> seen_seqs_;
  double last_progress_ = 0;
};

/// One bounded-round (Jacobi / kRefresh) stratum under the stale-
/// synchronous exactly-once protocol (DESIGN.md §12).  Epochs mirror BSP
/// iterations; each passes through three local steps:
///
///   scan(e)   — run the loop rules over this rank's partitions, read at
///               kFull in the state left by fold(e-1); join-side rows that
///               must probe a remote static partition ship as ONE epoch-
///               tagged probe frame per destination — empty frames
///               included, they are the "source finished epoch e"
///               completeness signal.  Gated by the staleness window: e may
///               exceed the token-carried watermark by at most
///               cfg.ssp_staleness (0 = honest lockstep).
///   close(e)  — once every rank's epoch-e probe frame has been joined
///               (first ledger complete), the locally generated
///               contributions — already pre-folded per (target, key), the
///               Partial Partial Aggregates move — ship as ONE partial
///               frame per destination; self-owned rows fold locally.
///   fold(e)   — once every rank's epoch-e partial frame has been merged
///               (second ledger complete) and epoch e-1 is folded, the
///               accumulators stage into the targets and materialize
///               (kRefresh replacement).  The fold advances the local
///               watermark that rides the Safra token.
///
/// Exactly-once: each (source, epoch, kind) frame is accepted at most once
/// — the per-source epoch ledger discards injected duplicates and
/// retransmits BEFORE the Safra counter is credited and BEFORE anything
/// reaches an accumulator — and every accepted contribution enters exactly
/// one fold.  Epoch arithmetic over a commutative+associative aggregate is
/// then oblivious to delivery order, so the fixpoint is bit-identical to
/// the BSP engine's, duplicates and reorderings notwithstanding.
class SspStratumLoop {
 public:
  SspStratumLoop(vmpi::Comm& comm, const AsyncConfig& cfg, core::RankProfile& profile,
                 AsyncLoopStats& ls, const core::Stratum& stratum, int detector_tag_base,
                 std::size_t epochs)
      : comm_(comm),
        cfg_(cfg),
        profile_(profile),
        ls_(ls),
        detector_(comm, detector_tag_base),
        targets_(targets_of(stratum.loop_rules)),
        nranks_(static_cast<std::size_t>(comm.size())),
        epochs_total_(epochs) {
    app_seq_.assign(nranks_, 0);
    for (const auto& rule : stratum.loop_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        joins_.push_back(SspJoin{j, target_index(j->out.target)});
      } else {
        const auto& c = std::get<core::CopyRule>(rule);
        copies_.push_back(SspCopy{&c, target_index(c.out.target)});
      }
    }
    probe_out_.resize(joins_.size() * nranks_);
    // Quiescence alone is not completion when epochs are pipelined: rank 0
    // must also see every rank's watermark at the final epoch.
    detector_.require_watermark(epochs_total_);
  }

  /// Loop until the detector announces global completion.  No collectives.
  void run() {
    const double deadline = comm_.watchdog_seconds();
    last_progress_ = wall_now();

    while (!detector_.terminated()) {
      bool progressed = drain_app() > 0;
      if (try_advance()) progressed = true;
      if (progressed) {
        last_progress_ = wall_now();
        continue;
      }

      // Passive: ledgers incomplete or the staleness gate is shut.  Move
      // the termination/watermark protocol along — a token can raise the
      // watermark estimate, so re-check the gate before parking.
      {
        PhaseScope scope(comm_, profile_, Phase::kOther);
        detector_.poll();
        detector_.try_terminate();
      }
      if (detector_.terminated()) break;
      if (try_advance()) {
        last_progress_ = wall_now();
        continue;
      }
      if (deadline > 0 && wall_now() - last_progress_ > deadline) {
        comm_.world().fault_abort();
        throw vmpi::TimeoutError("ssp loop (epoch pipeline starved, no progress)",
                                 deadline, comm_.stats());
      }
      blocking_wait();
    }
  }

  [[nodiscard]] std::uint64_t epochs_folded() const { return fold_epoch_; }
  [[nodiscard]] std::uint64_t staged_total() const { return staged_total_; }
  [[nodiscard]] const TerminationDetector::Stats& detector_stats() const {
    return detector_.stats();
  }

 private:
  struct SspJoin {
    const core::JoinRule* rule;
    std::size_t out_idx;  // index of rule->out.target in targets_
  };
  struct SspCopy {
    const core::CopyRule* rule;
    std::size_t out_idx;
  };
  using AccMap = std::unordered_map<Tuple, Tuple, storage::TupleHash>;

  /// Live state of one in-flight epoch.  At most ssp_staleness + 2 epochs
  /// are live at once (the gate bounds how far any sender runs ahead of
  /// this rank's fold), and a folded epoch's state is erased — the ledger
  /// for retired epochs is the fold_epoch_ cursor itself.
  struct EpochState {
    std::vector<AccMap> out_acc;   // per target: locally generated key -> dep
    std::vector<AccMap> fold_acc;  // per target: owned contributions key -> dep
    std::vector<bool> probe_from;  // first ledger: epoch-e probe frame per source
    std::vector<bool> partial_from;  // second ledger: epoch-e partial frame
    std::size_t probes_seen = 0;
    std::size_t partials_seen = 0;
    bool scanned = false;
    bool closed = false;
  };

  std::size_t target_index(Relation* r) const {
    const auto it = std::find(targets_.begin(), targets_.end(), r);
    assert(it != targets_.end() && "check_supported admitted a foreign relation");
    return static_cast<std::size_t>(it - targets_.begin());
  }

  EpochState& epoch_state(std::uint64_t e) {
    auto [it, inserted] = live_.try_emplace(e);
    EpochState& st = it->second;
    if (inserted) {
      st.out_acc.resize(targets_.size());
      st.fold_acc.resize(targets_.size());
      st.probe_from.assign(nranks_, false);
      st.partial_from.assign(nranks_, false);
    }
    return st;
  }

  /// Fold one generated row into an accumulator: within-epoch duplicates of
  /// a key collapse through partial_agg, exactly as Relation::stage would.
  void merge_acc(AccMap& m, std::size_t target_idx, std::span<const value_t> row) {
    const Relation& t = *targets_[target_idx];
    const std::size_t indep = t.indep_arity();
    Tuple key(row.subspan(0, indep));
    const auto dep = row.subspan(indep, t.dep_arity());
    auto [it, inserted] = m.try_emplace(std::move(key), Tuple(dep));
    if (!inserted) {
      Tuple merged = it->second;
      t.config().aggregator->partial_agg(it->second.view(), dep, merged.mutable_view());
      it->second = std::move(merged);
    }
  }

  // -- the three epoch steps ---------------------------------------------------

  [[nodiscard]] bool can_scan() const {
    // scan(e) reads the state fold(e-1) left behind, so the local pipeline
    // is scan-fold interlocked; the watermark gate additionally keeps this
    // rank within the staleness window of the slowest peer.
    return scan_epoch_ == fold_epoch_ && scan_epoch_ < epochs_total_ &&
           scan_epoch_ <= detector_.global_watermark() + cfg_.ssp_staleness;
  }

  void scan() {
    const std::uint64_t e = scan_epoch_;
    EpochState& st = epoch_state(e);
    {
      PhaseScope scope(comm_, profile_, Phase::kLocalJoin);
      std::uint64_t work = 0;
      static const Tuple kEmpty;
      for (const SspCopy& task : copies_) {
        const core::CopyRule& rule = *task.rule;
        rule.src->tree(Version::kFull).for_each([&](std::span<const value_t> row) {
          ++work;
          if (rule.filter && rule.filter->eval(row, kEmpty.view()) == 0) return;
          out_scratch_.clear();
          for (const auto& ex : rule.out.cols) {
            out_scratch_.push_back(ex.eval(row, kEmpty.view()));
          }
          merge_acc(st.out_acc[task.out_idx], task.out_idx, out_scratch_.view());
        });
      }
      for (std::size_t j = 0; j < joins_.size(); ++j) {
        const SspJoin& task = joins_[j];
        const Relation& a = *task.rule->a;
        const Relation& b = *task.rule->b;
        auto cur = b.tree(Version::kFull).cursor();
        a.tree(Version::kFull).for_each([&](std::span<const value_t> row) {
          const auto bucket = a.bucket_of(row);
          b.ranks_of_bucket(bucket, dest_scratch_);
          for (int d : dest_scratch_) {
            ++work;
            if (d == comm_.rank()) {
              join_probe_row(task, st, row, cur);
            } else {
              auto& buf = probe_out_[j * nranks_ + static_cast<std::size_t>(d)];
              buf.insert(buf.end(), row.begin(), row.end());
            }
          }
        });
      }
      profile_.add_work(Phase::kLocalJoin, work);
    }
    send_probe_frames(e);
    st.scanned = true;
    // Own probes were joined in place above: the ledger slot fills now.
    st.probe_from[static_cast<std::size_t>(comm_.rank())] = true;
    ++st.probes_seen;
    ++scan_epoch_;
  }

  void close_epoch(std::uint64_t e) {
    EpochState& st = epoch_state(e);
    const auto me = static_cast<std::size_t>(comm_.rank());
    // Partition the pre-folded contributions by owner: self rows go
    // straight to the fold accumulator, the rest frame up per destination.
    std::vector<std::vector<value_t>> out(targets_.size() * nranks_);
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      Relation* t = targets_[i];
      for (const auto& [key, dep] : st.out_acc[i]) {
        row_scratch_.clear();
        for (const value_t v : key.view()) row_scratch_.push_back(v);
        for (const value_t v : dep.view()) row_scratch_.push_back(v);
        const int dst = t->owner_rank(row_scratch_.view());
        if (static_cast<std::size_t>(dst) == me) {
          merge_acc(st.fold_acc[i], i, row_scratch_.view());
          ++ls_.rows_loopback;
        } else {
          auto& buf = out[i * nranks_ + static_cast<std::size_t>(dst)];
          buf.insert(buf.end(), row_scratch_.view().begin(), row_scratch_.view().end());
        }
      }
      st.out_acc[i].clear();
    }
    {
      PhaseScope scope(comm_, profile_, Phase::kAllToAll);
      for (std::size_t d = 0; d < nranks_; ++d) {
        if (d == me) continue;
        vmpi::TypedWriter<value_t> w;
        w.put(static_cast<value_t>(e));
        std::uint64_t rows = 0;
        for (std::size_t i = 0; i < targets_.size(); ++i) {
          auto& buf = out[i * nranks_ + d];
          if (buf.empty()) continue;
          const auto count = buf.size() / targets_[i]->arity();
          w.put(static_cast<value_t>(i));
          w.put(static_cast<value_t>(count));
          w.put_span(std::span<const value_t>(buf));
          rows += count;
        }
        send_app(static_cast<int>(d), kTagSspPartial, w);
        ls_.stage_rows_sent += rows;
        profile_.add_work(Phase::kAllToAll, rows);
      }
    }
    st.closed = true;
    // Own partial contribution is folded: fill the second ledger slot.
    st.partial_from[me] = true;
    ++st.partials_seen;
    ++ls_.ssp_partials_folded;
  }

  void fold_epoch() {
    const std::uint64_t e = fold_epoch_;
    EpochState& st = epoch_state(e);
    {
      PhaseScope scope(comm_, profile_, Phase::kDedupAgg);
      for (std::size_t i = 0; i < targets_.size(); ++i) {
        Relation* t = targets_[i];
        for (const auto& [key, dep] : st.fold_acc[i]) {
          row_scratch_.clear();
          for (const value_t v : key.view()) row_scratch_.push_back(v);
          for (const value_t v : dep.view()) row_scratch_.push_back(v);
          t->stage(row_scratch_.view());
        }
        // Materialize every target every epoch, rows or not: kRefresh
        // replacement clears the previous state exactly as a BSP iteration
        // boundary would.
        const auto m = t->materialize();
        profile_.add_work(Phase::kDedupAgg, m.staged);
        staged_total_ += m.staged;
      }
    }
    live_.erase(e);
    ++fold_epoch_;
    ++ls_.ssp_epochs;
    detector_.set_local_watermark(fold_epoch_);
    // Epoch boundary: release injected delays, apply epoch faults — the
    // SSP analogue of the BSP iteration boundary.
    comm_.advance_epoch();
    profile_.end_iteration();
  }

  /// Run every enabled epoch step until none applies.  Returns whether
  /// anything happened.
  bool try_advance() {
    bool any = false;
    for (bool progressed = true; progressed;) {
      progressed = false;
      if (fold_epoch_ < epochs_total_) {
        const auto it = live_.find(fold_epoch_);
        if (it != live_.end() && it->second.partials_seen == nranks_) {
          fold_epoch();
          progressed = true;
          continue;
        }
      }
      for (auto& [e, st] : live_) {
        if (st.scanned && !st.closed && st.probes_seen == nranks_) {
          close_epoch(e);
          progressed = true;
          break;
        }
      }
      if (progressed) {
        any = true;
        continue;
      }
      if (can_scan()) {
        scan();
        progressed = true;
      }
      any = any || progressed;
    }
    return any;
  }

  // -- outbound ----------------------------------------------------------------

  void send_app(int dst, int tag, vmpi::TypedWriter<value_t>& w) {
    core::wire::seal_frame(w, app_seq_[static_cast<std::size_t>(dst)]++);
    comm_.isend(dst, tag, w.take());
    detector_.on_app_send();
    ++ls_.messages_sent;
  }

  void send_probe_frames(std::uint64_t e) {
    PhaseScope scope(comm_, profile_, Phase::kAllToAll);
    const auto me = static_cast<std::size_t>(comm_.rank());
    for (std::size_t d = 0; d < nranks_; ++d) {
      if (d == me) continue;
      vmpi::TypedWriter<value_t> w;
      w.put(static_cast<value_t>(e));
      std::uint64_t rows = 0;
      for (std::size_t j = 0; j < joins_.size(); ++j) {
        auto& buf = probe_out_[j * nranks_ + d];
        if (buf.empty()) continue;
        const auto count = buf.size() / joins_[j].rule->a->arity();
        w.put(static_cast<value_t>(j));
        w.put(static_cast<value_t>(count));
        w.put_span(std::span<const value_t>(buf));
        rows += count;
        buf.clear();
      }
      send_app(static_cast<int>(d), kTagSspProbe, w);
      ls_.probe_rows_sent += rows;
      profile_.add_work(Phase::kAllToAll, rows);
    }
  }

  /// Join one scan row against the local partition of the static side;
  /// outputs accumulate into the epoch's out_acc.
  void join_probe_row(const SspJoin& task, EpochState& st,
                      std::span<const value_t> outer_row,
                      storage::TupleBTree::Cursor& cur) {
    const core::JoinRule& rule = *task.rule;
    const std::size_t jcc = rule.a->jcc();
    const auto prefix = outer_row.first(jcc);
    for (cur.seek(prefix); cur.valid() && cur.matches(prefix); cur.next()) {
      const auto irow = cur.row();
      if (rule.filter && rule.filter->eval(outer_row, irow) == 0) continue;
      out_scratch_.clear();
      for (const auto& ex : rule.out.cols) out_scratch_.push_back(ex.eval(outer_row, irow));
      merge_acc(st.out_acc[task.out_idx], task.out_idx, out_scratch_.view());
    }
  }

  // -- inbound -----------------------------------------------------------------

  void on_ssp_frame(int src, int tag, const vmpi::Bytes& bytes) {
    const core::wire::Frame frame = core::wire::open_frame(bytes);
    if (frame.empty()) {
      throw vmpi::FrameDecodeError("ssp: frame has no epoch word");
    }
    vmpi::TypedReader<value_t> r(frame.payload);
    const auto e = static_cast<std::uint64_t>(r.get());
    if (e >= epochs_total_) {
      throw vmpi::FrameDecodeError("ssp: frame epoch out of range");
    }
    const auto s = static_cast<std::size_t>(src);
    const bool probe_kind = tag == kTagSspProbe;
    // The epoch ledger, consulted BEFORE the Safra counter is credited and
    // before anything reaches an accumulator: exactly one frame of each
    // kind per (source, epoch) is the sender's contract, so a second one —
    // the PR 5 dup-injection path, or any retransmit — is discarded here.
    // An epoch below the fold cursor was only folded because every source's
    // slot had filled, so a late frame for it is a duplicate by definition.
    bool dup = e < fold_epoch_;
    if (!dup) {
      const EpochState& st = epoch_state(e);
      dup = probe_kind ? st.probe_from[s] : st.partial_from[s];
    }
    if (dup) {
      ++ls_.ssp_ledger_discards;
      comm_.stats().dup_frames_discarded += 1;
      return;
    }
    detector_.on_app_receive();
    ++ls_.messages_received;
    if (probe_kind) {
      on_ssp_probe(e, r);
      EpochState& st = epoch_state(e);
      st.probe_from[s] = true;
      ++st.probes_seen;
    } else {
      on_ssp_partial(e, r);
      EpochState& st = epoch_state(e);
      st.partial_from[s] = true;
      ++st.partials_seen;
      ++ls_.ssp_partials_folded;
    }
  }

  void on_ssp_probe(std::uint64_t e, vmpi::TypedReader<value_t>& r) {
    PhaseScope scope(comm_, profile_, Phase::kLocalJoin);
    EpochState& st = epoch_state(e);
    std::uint64_t rows = 0;
    while (!r.done()) {
      if (r.remaining() < 2) {
        throw vmpi::FrameDecodeError("ssp: probe frame truncated before row count");
      }
      const auto j = static_cast<std::size_t>(r.get());
      if (j >= joins_.size()) {
        throw vmpi::FrameDecodeError("ssp: probe frame names an unknown join rule");
      }
      const SspJoin& task = joins_[j];
      const std::size_t arity = task.rule->a->arity();
      const auto count = static_cast<std::size_t>(r.get());
      if (count > r.remaining() / arity) {
        throw vmpi::FrameDecodeError("ssp: probe frame row count overruns payload");
      }
      const auto flat = r.take_span(count * arity);
      auto cur = task.rule->b->tree(Version::kFull).cursor();
      for (std::size_t off = 0; off < flat.size(); off += arity) {
        join_probe_row(task, st, flat.subspan(off, arity), cur);
      }
      rows += count;
    }
    profile_.add_work(Phase::kLocalJoin, rows);
  }

  void on_ssp_partial(std::uint64_t e, vmpi::TypedReader<value_t>& r) {
    PhaseScope scope(comm_, profile_, Phase::kDedupAgg);
    EpochState& st = epoch_state(e);
    std::uint64_t rows = 0;
    while (!r.done()) {
      if (r.remaining() < 2) {
        throw vmpi::FrameDecodeError("ssp: partial frame truncated before row count");
      }
      const auto i = static_cast<std::size_t>(r.get());
      if (i >= targets_.size()) {
        throw vmpi::FrameDecodeError("ssp: partial frame names an unknown target");
      }
      const std::size_t arity = targets_[i]->arity();
      const auto count = static_cast<std::size_t>(r.get());
      if (count > r.remaining() / arity) {
        throw vmpi::FrameDecodeError("ssp: partial frame row count overruns payload");
      }
      const auto flat = r.take_span(count * arity);
      for (std::size_t off = 0; off < flat.size(); off += arity) {
        merge_acc(st.fold_acc[i], i, flat.subspan(off, arity));
      }
      rows += count;
    }
    profile_.add_work(Phase::kDedupAgg, rows);
  }

  std::size_t drain_app() {
    std::size_t n = 0;
    n += comm_.drain(kTagSspProbe,
                     [&](int src, vmpi::Bytes b) { on_ssp_frame(src, kTagSspProbe, b); });
    n += comm_.drain(kTagSspPartial, [&](int src, vmpi::Bytes b) {
      on_ssp_frame(src, kTagSspPartial, b);
    });
    return n;
  }

  /// Park until *any* message arrives and dispatch it by tag.
  void blocking_wait() {
    const double t0 = wall_now();
    int src = 0;
    int tag = 0;
    const vmpi::Bytes bytes = comm_.recv(vmpi::kAnySource, vmpi::kAnyTag, &src, &tag);
    ls_.blocked_seconds += wall_now() - t0;
    if (detector_.owns_tag(tag)) {
      detector_.on_control(src, tag, bytes);
      return;
    }
    if (tag == kTagSspProbe || tag == kTagSspPartial) {
      on_ssp_frame(src, tag, bytes);
      return;
    }
    // Foreign tag: a delayed control frame from a retired stratum's
    // detector.  Stale by construction — discard, don't abort.
    comm_.stats().dup_frames_discarded += 1;
  }

  vmpi::Comm& comm_;
  const AsyncConfig& cfg_;
  core::RankProfile& profile_;
  AsyncLoopStats& ls_;
  TerminationDetector detector_;

  std::vector<Relation*> targets_;
  std::vector<SspJoin> joins_;
  std::vector<SspCopy> copies_;

  std::size_t nranks_;
  std::uint64_t epochs_total_;
  std::uint64_t scan_epoch_ = 0;  // epochs scanned (own contributions sent)
  std::uint64_t fold_epoch_ = 0;  // epochs folded (state visible at kFull)
  std::unordered_map<std::uint64_t, EpochState> live_;

  // Per-destination probe buffers of the epoch being scanned, join-major.
  std::vector<std::vector<value_t>> probe_out_;

  std::uint64_t staged_total_ = 0;
  std::vector<int> dest_scratch_;
  Tuple out_scratch_;
  Tuple row_scratch_;
  std::vector<value_t> app_seq_;
  double last_progress_ = 0;
};

}  // namespace

void AsyncEngine::validate_config(const AsyncConfig& cfg) {
  if (cfg.max_staleness == 0) {
    throw ConfigError(
        "async engine: max_staleness = 0 describes no flush schedule (a buffered "
        "row that may linger for zero rounds); use 1 for flush-every-round, or "
        "ssp_staleness = 0 for the stale-synchronous lockstep mode");
  }
  if (cfg.batch_rows == 0) {
    throw ConfigError("async engine: batch_rows = 0 — eager sends need a positive "
                      "row threshold");
  }
}

void AsyncEngine::check_supported(const core::Program& program, const AsyncConfig& cfg) {
  // Collect every violation, deduplicated, and throw ONE typed diagnostic:
  // the same relation can be the target of several rules (and a program can
  // offend in several strata), and the old per-target throw-on-first shape
  // meant callers that catch-print-continue reported the same defect twice
  // while hiding the rest.
  std::vector<std::string> violations;
  const auto flag = [&](std::string msg) {
    if (std::find(violations.begin(), violations.end(), msg) == violations.end()) {
      violations.push_back(std::move(msg));
    }
  };

  std::size_t si = 0;
  for (const auto& sptr : program.strata()) {
    const core::Stratum& s = *sptr;
    const std::string where = "stratum " + std::to_string(si++);
    if (s.loop_rules.empty()) continue;
    const auto targets = targets_of(s.loop_rules);
    const bool ssp_stratum = !s.fixpoint && cfg.ssp;

    if (!s.fixpoint && !cfg.ssp) {
      flag(where +
           " runs a fixed number of rounds (fixpoint = false, Jacobi-style refresh "
           "recomputation, e.g. PageRank); its semantics depend on synchronized "
           "rounds — run it on the BSP core::Engine, or opt into the "
           "stale-synchronous mode (AsyncConfig::ssp / --staleness)");
      continue;  // the remaining checks assume one of the two loop protocols
    }

    for (const Relation* t : targets) {
      if (ssp_stratum) {
        if (!t->aggregated()) {
          flag(where + ": relation '" + t->name() +
               "' is not aggregated; the stale-synchronous protocol folds per-epoch "
               "partial aggregates, so every loop target needs an aggregator");
          continue;
        }
        if (!t->config().aggregator->exactly_once_capable()) {
          flag(where + ": relation '" + t->name() + "' aggregates with " +
               std::string(t->config().aggregator->name()) +
               ", which is not exactly-once capable (commutative + associative); "
               "the epoch ledger cannot make its folds order-insensitive");
        }
        if (t->config().agg_mode == core::AggMode::kRefresh &&
            t->aggregated() && !t->config().aggregator->invertible()) {
          flag(where + ": relation '" + t->name() + "' refreshes with " +
               std::string(t->config().aggregator->name()) +
               ", which declares no pre-mappable inverse (RecursiveAggregator::"
               "unapply); kRefresh under stale-synchronous folding requires one "
               "to retract a superseded contribution");
        }
      } else {
        if (t->config().agg_mode == core::AggMode::kRefresh) {
          flag(where + ": relation '" + t->name() +
               "' uses AggMode::kRefresh (per-round replacement), which is not "
               "order-insensitive — run it on the BSP core::Engine, or opt into "
               "the stale-synchronous mode (AsyncConfig::ssp / --staleness)");
        }
        if (t->aggregated() && !t->config().aggregator->idempotent()) {
          flag(where + ": relation '" + t->name() + "' aggregates with " +
               std::string(t->config().aggregator->name()) +
               ", which is not idempotent — asynchronous delivery may fold a stale "
               "delta more than once, so only idempotent lattice joins ($MIN, $MAX, "
               "set-union, ...) are safe; run it on the BSP core::Engine");
        }
      }
    }
    for (const auto& rule : s.loop_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        if (j->anti) {
          flag(where + ": antijoin against '" + j->b->name() +
               "' — deciding absence needs a globally synchronized view; run it on "
               "the BSP core::Engine");
        }
        if (ssp_stratum) {
          if (std::find(targets.begin(), targets.end(), j->a) == targets.end() ||
              j->a_version != Version::kFull) {
            flag(where + ": stale-synchronous loop join must scan a loop target at "
                         "kFull (the state the previous epoch's fold left behind), "
                         "but reads '" +
                 j->a->name() + "'");
          }
        } else if (std::find(targets.begin(), targets.end(), j->a) == targets.end() ||
                   j->a_version != Version::kDelta) {
          flag(where + ": loop join must drive from the recursive relation's delta "
                       "(side a must be a loop target read at kDelta), but reads '" +
               j->a->name() + "'");
        }
        if (std::find(targets.begin(), targets.end(), j->b) != targets.end()) {
          flag(where + ": join side '" + j->b->name() +
               "' is itself a loop target; the asynchronous schedule requires a "
               "static probe side");
        }
        if (j->b_version != Version::kFull) {
          flag(where + ": the static join side '" + j->b->name() +
               "' must be probed at kFull");
        }
      } else {
        const auto& c = std::get<core::CopyRule>(rule);
        if (ssp_stratum) {
          if (std::find(targets.begin(), targets.end(), c.src) != targets.end() ||
              c.version != Version::kFull) {
            flag(where + ": stale-synchronous loop copy must read a static relation "
                         "at kFull (it re-injects per-epoch base contributions), "
                         "but reads '" +
                 c.src->name() + "'");
          }
        } else if (std::find(targets.begin(), targets.end(), c.src) == targets.end() ||
                   c.version != Version::kDelta) {
          flag(where + ": loop copy must read a loop target's delta, but reads '" +
               c.src->name() + "'");
        }
      }
    }
  }

  if (!violations.empty()) {
    std::string msg = "async engine: program not async-capable (" +
                      std::to_string(violations.size()) + " violation" +
                      (violations.size() == 1 ? "" : "s") + "):";
    for (const auto& v : violations) msg += "\n  - " + v;
    throw UnsupportedProgramError(msg);
  }
}

core::StratumResult AsyncEngine::run_stratum(const core::Stratum& stratum) {
  core::StratumResult result;
  const int detector_base =
      TerminationDetector::kDefaultTagBase + static_cast<int>(2 * stratum_seq_++);

  // ---- init rules: the collective path, as in the BSP engine ----------------
  // Collectives are only banned *inside* the loop; init runs once and the
  // stratum boundary is a synchronization point anyway.
  if (!stratum.init_rules.empty()) {
    core::ExchangeRouter router(*comm_, /*preaggregate=*/true);
    for (const auto& rule : stratum.init_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        core::execute_join(*comm_, profile_, *j, router);
      } else {
        core::execute_copy(profile_, std::get<core::CopyRule>(rule), router);
      }
    }
    router.flush(profile_, core::ExchangeAlgorithm::kDense);
    {
      PhaseScope scope(*comm_, profile_, Phase::kDedupAgg);
      for (Relation* t : targets_of(stratum.init_rules)) {
        const auto m = t->materialize();
        profile_.add_work(Phase::kDedupAgg, m.staged);
      }
    }
    profile_.end_iteration();
  }

  if (stratum.loop_rules.empty()) {
    result.reached_fixpoint = true;
    return result;
  }

  // ---- the nonblocking loop --------------------------------------------------
  // Fixpoint strata run the free-running delta loop; bounded-round strata
  // run the stale-synchronous epoch pipeline (check_supported admitted them
  // only under cfg_.ssp).  Both are collective-free.
  const auto collectives_before = collective_calls(comm_->stats());
  std::uint64_t rounds = 0;
  std::uint64_t staged = 0;
  if (stratum.fixpoint) {
    StratumLoop loop(*comm_, cfg_, profile_, loop_stats_, stratum, detector_base);
    loop.run();
    rounds = loop.rounds();
    staged = loop.staged_total();
    loop_stats_.token_probes += loop.detector_stats().probes_started;
    loop_stats_.tokens_forwarded += loop.detector_stats().tokens_forwarded;
  } else {
    const std::size_t epochs = std::min(stratum.max_rounds, cfg_.max_rounds);
    SspStratumLoop loop(*comm_, cfg_, profile_, loop_stats_, stratum, detector_base,
                        epochs);
    loop.run();
    rounds = loop.epochs_folded();
    staged = loop.staged_total();
    loop_stats_.token_probes += loop.detector_stats().probes_started;
    loop_stats_.tokens_forwarded += loop.detector_stats().tokens_forwarded;
  }
  loop_stats_.collective_calls_in_loop +=
      collective_calls(comm_->stats()) - collectives_before;

  // Fence before the first post-loop collective.  The log-step collective
  // schedules relay over the mailboxes, and a rank that learns of
  // termination late is still parked in the loop's wildcard recv — it
  // would swallow (and discard as stale) a relay frame from a peer that
  // already moved on.  The barrier rides the slot matrix, not the
  // mailboxes, so it is safe at any interleaving and guarantees every
  // wildcard recv has retired before the first relay frame flies.
  comm_->barrier();

  // ---- stratum summary (collective; doubles as the inter-stratum sync) -------
  {
    PhaseScope scope(*comm_, profile_, Phase::kOther);
    result.iterations = static_cast<std::size_t>(
        comm_->allreduce<std::uint64_t>(rounds, vmpi::ReduceOp::kMax));
    result.tuples_generated =
        comm_->allreduce<std::uint64_t>(staged, vmpi::ReduceOp::kSum);
  }
  profile_.end_iteration();
  result.reached_fixpoint = true;
  return result;
}

core::RunResult AsyncEngine::run(core::Program& program) {
  validate_config(cfg_);
  program.validate();
  check_supported(program, cfg_);

  core::RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    for (const auto& stratum : program.strata()) {
      auto sr = run_stratum(*stratum);
      result.total_iterations += sr.iterations;
      result.strata.push_back(sr);
    }
  } catch (const vmpi::FaultError& e) {
    // Same contract as core::Engine: poison the world (idempotent) so
    // peers unwind, surface a typed abort, and skip the cross-rank
    // summary — its collectives cannot run on a poisoned world.
    comm_->world().fault_abort();
    result.aborted_fault = true;
    result.fault_what = e.what();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  result.profile = core::summarize_profiles(*comm_, profile_);
  {
    vmpi::StatsPause pause(*comm_);
    const auto all = comm_->allgather_stats(comm_->stats());
    for (const auto& s : all) result.comm_total += s;
  }
  return result;
}

}  // namespace paralagg::async

#include "async/async_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <variant>

#include "async/termination.hpp"
#include "core/exchange_router.hpp"
#include "core/phase_scope.hpp"
#include "core/ra_op.hpp"
#include "core/relation.hpp"
#include "core/wire.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::async {

namespace {

using core::Phase;
using core::PhaseScope;
using core::Relation;
using core::Tuple;
using core::value_t;
using core::Version;

// Application-message tags of the async loop.  Disjoint from the Bruck
// relay block (0x42000000+k, unused here — no collectives in the loop) and
// from the TerminationDetector's control block.
constexpr int kTagStage = 0x51A50000;  // generated rows -> owner rank
constexpr int kTagProbe = 0x51A50001;  // delta rows -> static side's bucket ranks

void push_unique(std::vector<Relation*>& v, Relation* r) {
  if (r != nullptr && std::find(v.begin(), v.end(), r) == v.end()) v.push_back(r);
}

std::vector<Relation*> targets_of(const std::vector<core::Rule>& rules) {
  std::vector<Relation*> out;
  for (const auto& rule : rules) {
    std::visit([&](const auto& r) { push_unique(out, r.out.target); }, rule);
  }
  return out;
}

std::uint64_t collective_calls(const vmpi::CommStats& s) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < vmpi::kOpCount; ++i) {
    if (static_cast<vmpi::Op>(i) == vmpi::Op::kP2P) continue;
    total += s.calls[i];
  }
  return total;
}

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One stratum's nonblocking loop on one rank.  Owns the per-destination
/// outbound buffers and the termination detector; lives on the stack of
/// AsyncEngine::run_stratum.
class StratumLoop {
 public:
  StratumLoop(vmpi::Comm& comm, const AsyncConfig& cfg, core::RankProfile& profile,
              AsyncLoopStats& ls, const core::Stratum& stratum, int detector_tag_base)
      : comm_(comm),
        cfg_(cfg),
        profile_(profile),
        ls_(ls),
        detector_(comm, detector_tag_base),
        targets_(targets_of(stratum.loop_rules)),
        nranks_(static_cast<std::size_t>(comm.size())) {
    fresh_.assign(targets_.size(), false);
    stage_out_.resize(targets_.size() * nranks_);
    app_seq_.assign(nranks_, 0);
    seen_seqs_.resize(nranks_);
    for (const auto& rule : stratum.loop_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        joins_.push_back(JoinTask{j, target_index(j->a), target_index(j->out.target)});
      } else {
        const auto& c = std::get<core::CopyRule>(rule);
        copies_.push_back(CopyTask{&c, target_index(c.src), target_index(c.out.target)});
      }
    }
    probe_out_.resize(joins_.size() * nranks_);
  }

  /// Loop until the detector announces global quiescence.  No collectives.
  void run() {
    // Round 0's frontier pre-exists: init rules and load_facts leave their
    // seeds in the delta trees, and materialize() would clear them — so
    // consume what is already there instead of materializing first.
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      fresh_[i] = targets_[i]->local_size(Version::kDelta) > 0;
    }

    // Progress watchdog.  The per-recv watchdog inside Comm only catches
    // a rank parked with *nothing* arriving; a dropped app message leaves
    // the Safra counters permanently unbalanced, so probes keep failing
    // and tokens keep circulating — every blocking recv returns promptly
    // and the loop livelocks instead of hanging.  App-level progress
    // (computation or accepted app messages) is the signal that is
    // actually starved, so that is what the deadline watches.
    const double deadline = comm_.watchdog_seconds();
    last_progress_ = wall_now();

    while (!detector_.terminated()) {
      if (drain_app() > 0) last_progress_ = wall_now();
      if (local_round()) {
        // A productive local round is the async analogue of a BSP
        // iteration boundary: release injected delays, apply epoch faults.
        comm_.advance_epoch();
        last_progress_ = wall_now();
        continue;
      }

      // Nothing to compute: push every buffered row out, then re-check the
      // mailbox — a message may have raced in while we were flushing.
      flush_all();
      if (drain_app() > 0) {
        last_progress_ = wall_now();
        continue;
      }

      // Passive: all work done, all sends flushed.  Move the termination
      // protocol along, then park in a blocking receive — the next app
      // message reactivates us, a token gets forwarded on the next pass,
      // and the terminate announcement breaks the loop.
      {
        PhaseScope scope(comm_, profile_, Phase::kOther);
        detector_.poll();
        detector_.try_terminate();
      }
      if (detector_.terminated()) break;
      if (deadline > 0 && wall_now() - last_progress_ > deadline) {
        comm_.world().fault_abort();
        throw vmpi::TimeoutError("async loop (termination starved, no app progress)",
                                 deadline, comm_.stats());
      }
      blocking_wait();
    }
  }

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t staged_total() const { return staged_total_; }
  [[nodiscard]] const TerminationDetector::Stats& detector_stats() const {
    return detector_.stats();
  }

 private:
  struct JoinTask {
    const core::JoinRule* rule;
    std::size_t src_idx;  // index of rule->a in targets_
    std::size_t out_idx;  // index of rule->out.target in targets_
  };
  struct CopyTask {
    const core::CopyRule* rule;
    std::size_t src_idx;
    std::size_t out_idx;
  };

  std::size_t target_index(Relation* r) const {
    const auto it = std::find(targets_.begin(), targets_.end(), r);
    assert(it != targets_.end() && "check_supported admitted a foreign relation");
    return static_cast<std::size_t>(it - targets_.begin());
  }

  /// One pass over the loop targets: fold staged arrivals, join each fresh
  /// delta frontier, batch the outputs.  Returns whether anything happened.
  bool local_round() {
    bool any = false;
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      Relation* t = targets_[i];
      if (fresh_[i]) {
        process_delta(i);
        fresh_[i] = false;
        any = true;
      }
      if (t->staged_count() > 0) {
        {
          PhaseScope scope(comm_, profile_, Phase::kDedupAgg);
          const auto m = t->materialize();
          profile_.add_work(Phase::kDedupAgg, m.staged);
          staged_total_ += m.staged;
          fresh_[i] = m.delta_size > 0;
        }
        if (fresh_[i]) {
          process_delta(i);
          fresh_[i] = false;
        }
        any = true;
      }
    }
    if (any) {
      ++rounds_;
      ++ls_.rounds;
      if (rounds_ > cfg_.max_rounds) {
        throw std::runtime_error("async engine: stratum exceeded max_rounds (" +
                                 std::to_string(cfg_.max_rounds) + ") local rounds");
      }
      maybe_flush();
      profile_.end_iteration();
    }
    return any;
  }

  /// Run every loop rule whose recursive side is targets_[target_idx] over
  /// that relation's current delta tree.
  void process_delta(std::size_t target_idx) {
    PhaseScope scope(comm_, profile_, Phase::kLocalJoin);
    std::uint64_t work = 0;

    for (std::size_t j = 0; j < joins_.size(); ++j) {
      const JoinTask& task = joins_[j];
      if (task.src_idx != target_idx) continue;
      const Relation& a = *task.rule->a;
      const Relation& b = *task.rule->b;
      const std::size_t arity = a.arity();
      // The delta tree iterates in key order, so the local probes below
      // are already sorted by join prefix — one monotone cursor walks b's
      // full tree alongside the delta scan.  b is static for the whole
      // stratum (check_supported), so the cursor stays valid.
      auto cur = b.tree(Version::kFull).cursor();
      // Replicate each fresh delta row to every rank holding a sub-bucket
      // of the static side's bucket — the point-to-point double of the BSP
      // intra-bucket exchange, paid per row instead of per iteration.
      a.tree(Version::kDelta).for_each([&](std::span<const value_t> row) {
        const auto bucket = a.bucket_of(row);
        b.ranks_of_bucket(bucket, dest_scratch_);
        for (int d : dest_scratch_) {
          ++work;
          if (d == comm_.rank()) {
            probe_row(task, row, cur);
          } else {
            append_probe(j, static_cast<std::size_t>(d), row, arity);
          }
        }
      });
    }

    static const Tuple kEmpty;
    for (const CopyTask& task : copies_) {
      if (task.src_idx != target_idx) continue;
      const core::CopyRule& rule = *task.rule;
      rule.src->tree(Version::kDelta).for_each([&](std::span<const value_t> row) {
        ++work;
        if (rule.filter && rule.filter->eval(row, kEmpty.view()) == 0) return;
        out_scratch_.clear();
        for (const auto& e : rule.out.cols) {
          out_scratch_.push_back(e.eval(row, kEmpty.view()));
        }
        route_output(task.out_idx, out_scratch_.view());
      });
    }
    profile_.add_work(Phase::kLocalJoin, work);
  }

  /// Join one delta row of the recursive side against the local partition
  /// of the static side; outputs go to their owners.  `cur` must belong to
  /// b's full tree; callers reuse it across rows so sorted probe streams
  /// resume from the current leaf instead of re-descending.
  void probe_row(const JoinTask& task, std::span<const value_t> outer_row,
                 storage::TupleBTree::Cursor& cur) {
    const core::JoinRule& rule = *task.rule;
    const std::size_t jcc = rule.a->jcc();
    const auto prefix = outer_row.first(jcc);
    for (cur.seek(prefix); cur.valid() && cur.matches(prefix); cur.next()) {
      const auto irow = cur.row();
      if (rule.filter && rule.filter->eval(outer_row, irow) == 0) continue;
      out_scratch_.clear();
      out_scratch_.reserve(rule.out.cols.size());
      for (const auto& e : rule.out.cols) out_scratch_.push_back(e.eval(outer_row, irow));
      route_output(task.out_idx, out_scratch_.view());
    }
  }

  void route_output(std::size_t out_idx, std::span<const value_t> row) {
    Relation* t = targets_[out_idx];
    const int dst = t->owner_rank(row);
    if (dst == comm_.rank()) {
      // Loopback: self-owned rows join the staging area directly and are
      // folded by the next materialize on this rank — zero communication.
      t->stage(row);
      ++ls_.rows_loopback;
      return;
    }
    auto& buf = stage_out_[out_idx * nranks_ + static_cast<std::size_t>(dst)];
    buf.insert(buf.end(), row.begin(), row.end());
    if (cfg_.routing == AsyncRouting::kOwnerDirect &&
        buf.size() >= cfg_.batch_rows * t->arity()) {
      send_stage_bucket(out_idx, static_cast<std::size_t>(dst));
    }
  }

  void append_probe(std::size_t join_idx, std::size_t dest, std::span<const value_t> row,
                    std::size_t arity) {
    auto& buf = probe_out_[join_idx * nranks_ + dest];
    buf.insert(buf.end(), row.begin(), row.end());
    if (cfg_.routing == AsyncRouting::kOwnerDirect && buf.size() >= cfg_.batch_rows * arity) {
      send_probe_bucket(join_idx, dest);
    }
  }

  // -- outbound ---------------------------------------------------------------

  /// Seal and ship one app frame.  The wire trailer's sequence number is
  /// per destination (stage and probe tags share the counter), so every
  /// frame this rank ever sends to `dst` is uniquely numbered — which is
  /// what lets the receiver recognize injected duplicates.
  void send_app(int dst, int tag, vmpi::TypedWriter<value_t>& w) {
    core::wire::seal_frame(w, app_seq_[static_cast<std::size_t>(dst)]++);
    comm_.isend(dst, tag, w.take());
    detector_.on_app_send();
    ++ls_.messages_sent;
  }

  void send_stage_bucket(std::size_t out_idx, std::size_t dest) {
    auto& buf = stage_out_[out_idx * nranks_ + dest];
    if (buf.empty()) return;
    PhaseScope scope(comm_, profile_, Phase::kAllToAll);
    const auto count = buf.size() / targets_[out_idx]->arity();
    vmpi::TypedWriter<value_t> w(buf.size() + 2);
    w.put(static_cast<value_t>(out_idx));
    w.put(static_cast<value_t>(count));
    w.put_span(std::span<const value_t>(buf));
    send_app(static_cast<int>(dest), kTagStage, w);
    ls_.stage_rows_sent += count;
    profile_.add_work(Phase::kAllToAll, count);
    buf.clear();
  }

  void send_probe_bucket(std::size_t join_idx, std::size_t dest) {
    auto& buf = probe_out_[join_idx * nranks_ + dest];
    if (buf.empty()) return;
    PhaseScope scope(comm_, profile_, Phase::kAllToAll);
    const auto count = buf.size() / joins_[join_idx].rule->a->arity();
    vmpi::TypedWriter<value_t> w(buf.size() + 2);
    w.put(static_cast<value_t>(join_idx));
    w.put(static_cast<value_t>(count));
    w.put_span(std::span<const value_t>(buf));
    send_app(static_cast<int>(dest), kTagProbe, w);
    ls_.probe_rows_sent += count;
    profile_.add_work(Phase::kAllToAll, count);
    buf.clear();
  }

  void maybe_flush() {
    ++stale_rounds_;
    if (cfg_.routing == AsyncRouting::kDense ||
        stale_rounds_ >= std::max<std::size_t>(cfg_.max_staleness, 1)) {
      flush_all();
    }
  }

  /// Ship everything buffered: one message per (kind, destination), frames
  /// for all routes concatenated — the same framing a router flush uses,
  /// minus the collective.
  void flush_all() {
    stale_rounds_ = 0;
    const auto me = static_cast<std::size_t>(comm_.rank());
    for (std::size_t d = 0; d < nranks_; ++d) {
      if (d == me) continue;
      {
        vmpi::TypedWriter<value_t> w;
        std::uint64_t rows = 0;
        for (std::size_t i = 0; i < targets_.size(); ++i) {
          auto& buf = stage_out_[i * nranks_ + d];
          if (buf.empty()) continue;
          const auto count = buf.size() / targets_[i]->arity();
          w.put(static_cast<value_t>(i));
          w.put(static_cast<value_t>(count));
          w.put_span(std::span<const value_t>(buf));
          rows += count;
          buf.clear();
        }
        if (!w.empty()) {
          PhaseScope scope(comm_, profile_, Phase::kAllToAll);
          send_app(static_cast<int>(d), kTagStage, w);
          ls_.stage_rows_sent += rows;
          profile_.add_work(Phase::kAllToAll, rows);
        }
      }
      {
        vmpi::TypedWriter<value_t> w;
        std::uint64_t rows = 0;
        for (std::size_t j = 0; j < joins_.size(); ++j) {
          auto& buf = probe_out_[j * nranks_ + d];
          if (buf.empty()) continue;
          const auto count = buf.size() / joins_[j].rule->a->arity();
          w.put(static_cast<value_t>(j));
          w.put(static_cast<value_t>(count));
          w.put_span(std::span<const value_t>(buf));
          rows += count;
          buf.clear();
        }
        if (!w.empty()) {
          PhaseScope scope(comm_, profile_, Phase::kAllToAll);
          send_app(static_cast<int>(d), kTagProbe, w);
          ls_.probe_rows_sent += rows;
          profile_.add_work(Phase::kAllToAll, rows);
        }
      }
    }
  }

  // -- inbound ----------------------------------------------------------------

  /// Open, validate, and dedup-filter one inbound app frame.  Returns
  /// false (counting it) when the frame is an injected duplicate; throws
  /// vmpi::FrameDecodeError on corruption.  The Safra receive is recorded
  /// here, for accepted frames only — the sender counted each message
  /// once, so discarding the injected copies BEFORE the detector sees
  /// them is what keeps the counters balanced and termination reachable
  /// under duplication.
  bool accept_app(int src, const vmpi::Bytes& bytes, core::wire::Frame& frame) {
    frame = core::wire::open_frame(bytes);
    if (frame.empty()) {
      throw vmpi::FrameDecodeError("async: app frame has no payload");
    }
    if (!seen_seqs_[static_cast<std::size_t>(src)].insert(frame.seq).second) {
      comm_.stats().dup_frames_discarded += 1;
      return false;
    }
    detector_.on_app_receive();
    ++ls_.messages_received;
    return true;
  }

  std::size_t drain_app() {
    std::size_t n = 0;
    n += comm_.drain(kTagStage, [&](int src, vmpi::Bytes b) {
      core::wire::Frame frame;
      if (accept_app(src, b, frame)) on_stage(frame.payload);
    });
    n += comm_.drain(kTagProbe, [&](int src, vmpi::Bytes b) {
      core::wire::Frame frame;
      if (accept_app(src, b, frame)) on_probe(frame.payload);
    });
    return n;
  }

  void on_stage(std::span<const std::byte> payload) {
    PhaseScope scope(comm_, profile_, Phase::kDedupAgg);
    vmpi::TypedReader<value_t> r(payload);
    std::uint64_t rows = 0;
    while (!r.done()) {
      if (r.remaining() < 2) {
        throw vmpi::FrameDecodeError("async: stage frame truncated before row count");
      }
      const auto idx = static_cast<std::size_t>(r.get());
      if (idx >= targets_.size()) {
        throw vmpi::FrameDecodeError("async: stage frame names an unknown route");
      }
      Relation& rel = *targets_[idx];
      const auto count = static_cast<std::size_t>(r.get());
      if (count > r.remaining() / rel.arity()) {
        throw vmpi::FrameDecodeError("async: stage frame row count overruns payload");
      }
      rel.stage_rows(r.take_span(count * rel.arity()));
      rows += count;
    }
    profile_.add_work(Phase::kDedupAgg, rows);
  }

  void on_probe(std::span<const std::byte> payload) {
    PhaseScope scope(comm_, profile_, Phase::kLocalJoin);
    vmpi::TypedReader<value_t> r(payload);
    std::uint64_t rows = 0;
    while (!r.done()) {
      if (r.remaining() < 2) {
        throw vmpi::FrameDecodeError("async: probe frame truncated before row count");
      }
      const auto j = static_cast<std::size_t>(r.get());
      if (j >= joins_.size()) {
        throw vmpi::FrameDecodeError("async: probe frame names an unknown join rule");
      }
      const JoinTask& task = joins_[j];
      const std::size_t arity = task.rule->a->arity();
      const auto count = static_cast<std::size_t>(r.get());
      if (count > r.remaining() / arity) {
        throw vmpi::FrameDecodeError("async: probe frame row count overruns payload");
      }
      const auto flat = r.take_span(count * arity);
      // Frames are concatenations of delta scans, so rows arrive in sorted
      // runs; one cursor rides the runs and re-descends only at run seams.
      auto cur = task.rule->b->tree(Version::kFull).cursor();
      for (std::size_t off = 0; off < flat.size(); off += arity) {
        probe_row(task, flat.subspan(off, arity), cur);
      }
      rows += count;
    }
    profile_.add_work(Phase::kLocalJoin, rows);
  }

  /// Park until *any* message arrives and dispatch it by tag.
  void blocking_wait() {
    const double t0 = wall_now();
    int src = 0;
    int tag = 0;
    const vmpi::Bytes bytes = comm_.recv(vmpi::kAnySource, vmpi::kAnyTag, &src, &tag);
    ls_.blocked_seconds += wall_now() - t0;
    if (detector_.owns_tag(tag)) {
      detector_.on_control(src, tag, bytes);
      return;
    }
    if (tag == kTagStage || tag == kTagProbe) {
      core::wire::Frame frame;
      if (!accept_app(src, bytes, frame)) return;
      if (tag == kTagStage) {
        on_stage(frame.payload);
      } else {
        on_probe(frame.payload);
      }
      return;
    }
    // Foreign tag: an injected delay can carry a control message from an
    // earlier stratum's detector (its tag block is retired) across the
    // stratum boundary.  Stale by construction — discard, don't abort.
    comm_.stats().dup_frames_discarded += 1;
  }

  vmpi::Comm& comm_;
  const AsyncConfig& cfg_;
  core::RankProfile& profile_;
  AsyncLoopStats& ls_;
  TerminationDetector detector_;

  std::vector<Relation*> targets_;
  std::vector<JoinTask> joins_;
  std::vector<CopyTask> copies_;
  std::vector<bool> fresh_;  // targets with an unconsumed delta frontier

  std::size_t nranks_;
  // Flat row buffers, route-major: [idx * nranks + dest], like the router.
  std::vector<std::vector<value_t>> stage_out_;
  std::vector<std::vector<value_t>> probe_out_;

  std::uint64_t rounds_ = 0;
  std::uint64_t staged_total_ = 0;
  std::size_t stale_rounds_ = 0;
  std::vector<int> dest_scratch_;
  Tuple out_scratch_;

  // Fault hardening: per-destination send sequence (stamped into the wire
  // trailer), per-source set of accepted sequences (injected duplicates
  // are discarded before the termination detector counts them), and the
  // progress-watchdog clock.
  std::vector<value_t> app_seq_;
  std::vector<std::unordered_set<value_t>> seen_seqs_;
  double last_progress_ = 0;
};

}  // namespace

void AsyncEngine::check_supported(const core::Program& program) {
  std::size_t si = 0;
  for (const auto& sptr : program.strata()) {
    const core::Stratum& s = *sptr;
    const std::string where = "async engine: stratum " + std::to_string(si++);
    if (s.loop_rules.empty()) continue;
    if (!s.fixpoint) {
      throw std::invalid_argument(
          where + " runs a fixed number of rounds (fixpoint = false, Jacobi-style "
                  "refresh recomputation, e.g. PageRank); its semantics depend on "
                  "synchronized rounds — run it on the BSP core::Engine");
    }
    const auto targets = targets_of(s.loop_rules);
    for (const Relation* t : targets) {
      if (t->config().agg_mode == core::AggMode::kRefresh) {
        throw std::invalid_argument(
            where + ": relation '" + t->name() +
            "' uses AggMode::kRefresh (per-round replacement), which is not "
            "order-insensitive — run it on the BSP core::Engine");
      }
      if (t->aggregated() && !t->config().aggregator->idempotent()) {
        throw std::invalid_argument(
            where + ": relation '" + t->name() + "' aggregates with " +
            std::string(t->config().aggregator->name()) +
            ", which is not idempotent — asynchronous delivery may fold a stale "
            "delta more than once, so only idempotent lattice joins ($MIN, $MAX, "
            "set-union, ...) are safe; run it on the BSP core::Engine");
      }
    }
    for (const auto& rule : s.loop_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        if (j->anti) {
          throw std::invalid_argument(
              where + ": antijoin against '" + j->b->name() +
              "' — deciding absence needs a globally synchronized view; run it on "
              "the BSP core::Engine");
        }
        if (std::find(targets.begin(), targets.end(), j->a) == targets.end() ||
            j->a_version != Version::kDelta) {
          throw std::invalid_argument(
              where + ": loop join must drive from the recursive relation's delta "
                      "(side a must be a loop target read at kDelta), but reads '" +
              j->a->name() + "'");
        }
        if (std::find(targets.begin(), targets.end(), j->b) != targets.end()) {
          throw std::invalid_argument(
              where + ": join side '" + j->b->name() +
              "' is itself a loop target; the asynchronous schedule requires a "
              "static probe side");
        }
        if (j->b_version != Version::kFull) {
          throw std::invalid_argument(where + ": the static join side '" + j->b->name() +
                                      "' must be probed at kFull");
        }
      } else {
        const auto& c = std::get<core::CopyRule>(rule);
        if (std::find(targets.begin(), targets.end(), c.src) == targets.end() ||
            c.version != Version::kDelta) {
          throw std::invalid_argument(
              where + ": loop copy must read a loop target's delta, but reads '" +
              c.src->name() + "'");
        }
      }
    }
  }
}

core::StratumResult AsyncEngine::run_stratum(const core::Stratum& stratum) {
  core::StratumResult result;
  const int detector_base =
      TerminationDetector::kDefaultTagBase + static_cast<int>(2 * stratum_seq_++);

  // ---- init rules: the collective path, as in the BSP engine ----------------
  // Collectives are only banned *inside* the loop; init runs once and the
  // stratum boundary is a synchronization point anyway.
  if (!stratum.init_rules.empty()) {
    core::ExchangeRouter router(*comm_, /*preaggregate=*/true);
    for (const auto& rule : stratum.init_rules) {
      if (const auto* j = std::get_if<core::JoinRule>(&rule)) {
        core::execute_join(*comm_, profile_, *j, router);
      } else {
        core::execute_copy(profile_, std::get<core::CopyRule>(rule), router);
      }
    }
    router.flush(profile_, core::ExchangeAlgorithm::kDense);
    {
      PhaseScope scope(*comm_, profile_, Phase::kDedupAgg);
      for (Relation* t : targets_of(stratum.init_rules)) {
        const auto m = t->materialize();
        profile_.add_work(Phase::kDedupAgg, m.staged);
      }
    }
    profile_.end_iteration();
  }

  if (stratum.loop_rules.empty()) {
    result.reached_fixpoint = true;
    return result;
  }

  // ---- the nonblocking loop --------------------------------------------------
  const auto collectives_before = collective_calls(comm_->stats());
  StratumLoop loop(*comm_, cfg_, profile_, loop_stats_, stratum, detector_base);
  loop.run();
  loop_stats_.collective_calls_in_loop +=
      collective_calls(comm_->stats()) - collectives_before;
  loop_stats_.token_probes += loop.detector_stats().probes_started;
  loop_stats_.tokens_forwarded += loop.detector_stats().tokens_forwarded;

  // Fence before the first post-loop collective.  The log-step collective
  // schedules relay over the mailboxes, and a rank that learns of
  // termination late is still parked in the loop's wildcard recv — it
  // would swallow (and discard as stale) a relay frame from a peer that
  // already moved on.  The barrier rides the slot matrix, not the
  // mailboxes, so it is safe at any interleaving and guarantees every
  // wildcard recv has retired before the first relay frame flies.
  comm_->barrier();

  // ---- stratum summary (collective; doubles as the inter-stratum sync) -------
  {
    PhaseScope scope(*comm_, profile_, Phase::kOther);
    result.iterations = static_cast<std::size_t>(
        comm_->allreduce<std::uint64_t>(loop.rounds(), vmpi::ReduceOp::kMax));
    result.tuples_generated =
        comm_->allreduce<std::uint64_t>(loop.staged_total(), vmpi::ReduceOp::kSum);
  }
  profile_.end_iteration();
  result.reached_fixpoint = true;
  return result;
}

core::RunResult AsyncEngine::run(core::Program& program) {
  program.validate();
  check_supported(program);

  core::RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    for (const auto& stratum : program.strata()) {
      auto sr = run_stratum(*stratum);
      result.total_iterations += sr.iterations;
      result.strata.push_back(sr);
    }
  } catch (const vmpi::FaultError& e) {
    // Same contract as core::Engine: poison the world (idempotent) so
    // peers unwind, surface a typed abort, and skip the cross-rank
    // summary — its collectives cannot run on a poisoned world.
    comm_->world().fault_abort();
    result.aborted_fault = true;
    result.fault_what = e.what();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  result.profile = core::summarize_profiles(*comm_, profile_);
  {
    vmpi::StatsPause pause(*comm_);
    const auto all = comm_->allgather<vmpi::CommStats>(comm_->stats());
    for (const auto& s : all) result.comm_total += s;
  }
  return result;
}

}  // namespace paralagg::async

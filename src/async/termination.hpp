#pragma once

// Distributed termination detection: Safra's token-ring algorithm (the
// coloured-token refinement of Dijkstra's ring probe, EWD-998 shape).
//
// The asynchronous engine has no per-iteration barrier, so "the global
// delta is empty" cannot be decided with an allreduce — a rank that looks
// idle may be about to receive a delta that reactivates it.  Safra's
// algorithm decides quiescence with point-to-point messages only:
//
//   * every rank keeps a counter = (app messages sent) − (app messages
//     received), and a colour that turns *black* on every app receive;
//   * a token (accumulated counter q, token colour) circulates the ring
//     rank → (rank+1) mod n, forwarded only while the holder is *passive*
//     (no local work, nothing buffered to send);
//   * forwarding adds the rank's counter to q and taints the token black
//     if the rank is black; the rank then whitens itself;
//   * rank 0 initiates probes and, when the token returns, declares
//     termination iff the token is white, rank 0 is white, and
//     q + counter₀ == 0 (every message sent has been received).  A failed
//     probe simply starts a fresh one.
//
// Under vmpi, isend enqueues directly into the destination mailbox, so
// "in flight" means "enqueued but not yet received" — exactly what the
// counters measure.  The detector is engine-agnostic: callers report app
// traffic via on_app_send / on_app_receive, hand control messages to
// on_control (or let poll() drain them), and call try_terminate() whenever
// they are passive.  Once terminated() flips, it never reverts.
//
// Fault hardening: tokens carry a monotone probe id and a CRC.  An
// injected duplicate or stale (delayed, reordered) token is recognised by
// its id and discarded; a corrupted token fails its CRC and raises
// vmpi::FrameDecodeError instead of corrupting the quiescence decision.
// A *dropped* token stalls the probe forever — that is not detectable
// here by design (Safra assumes reliable delivery) and is the async
// loop's progress watchdog's job.
//
// Epoch watermarks (stale-synchronous mode): each rank may publish a
// monotone `local watermark` — the number of epochs it has fully folded.
// Tokens accumulate the ring-wide minimum alongside Safra's counter and
// redistribute the last completed minimum, so every rank holds a safe
// (never-overestimating) estimate of the slowest peer's progress: the
// flow-control signal that bounds how far ahead a rank may run.  Rank 0
// additionally refuses to announce termination until the global minimum
// reaches `require_watermark(target)` — quiescence alone is not
// completion when epochs are pipelined, because a momentarily idle ring
// may still owe future epochs.  With the default target of 0 the fixpoint
// loops' behaviour is unchanged.

#include <cstdint>

#include "vmpi/comm.hpp"

namespace paralagg::async {

class TerminationDetector {
 public:
  /// Control-message tag block: token = base, terminate = base + 1.  Must
  /// not collide with any application tag on the same communicator.
  static constexpr int kDefaultTagBase = 0x53AF2A00;

  struct Stats {
    std::uint64_t probes_started = 0;    // tokens launched by rank 0
    std::uint64_t tokens_forwarded = 0;  // tokens this rank passed on
  };

  explicit TerminationDetector(vmpi::Comm& comm, int tag_base = kDefaultTagBase)
      : comm_(&comm), tag_base_(tag_base) {}

  TerminationDetector(const TerminationDetector&) = delete;
  TerminationDetector& operator=(const TerminationDetector&) = delete;

  [[nodiscard]] int token_tag() const { return tag_base_; }
  [[nodiscard]] int terminate_tag() const { return tag_base_ + 1; }
  [[nodiscard]] bool owns_tag(int tag) const {
    return tag == token_tag() || tag == terminate_tag();
  }

  /// Report `n` application messages sent / received.  Receives blacken
  /// this rank (its activity may have escaped the current probe).
  void on_app_send(std::uint64_t n = 1) { counter_ += static_cast<std::int64_t>(n); }
  void on_app_receive(std::uint64_t n = 1) {
    counter_ -= static_cast<std::int64_t>(n);
    black_ = true;
  }

  /// Consume one control message (token or terminate) addressed to this
  /// detector.  Tokens are only *stored* here; they move on the next
  /// try_terminate(), which is the caller's assertion of passivity.
  void on_control(int src, int tag, const vmpi::Bytes& payload);

  /// Nonblocking drain of queued control messages.  Returns how many were
  /// consumed.  Safe to call while active: a token received early simply
  /// waits for passivity.
  std::size_t poll();

  /// Caller is passive right now (no local work, all sends flushed): hold
  /// up the protocol's end — forward or evaluate a held token, and on rank
  /// 0 launch a probe if none is outstanding.  May flip terminated().
  void try_terminate();

  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] std::int64_t counter() const { return counter_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publish this rank's epoch watermark (monotone: epochs fully folded
  /// locally).  Rides the next token this rank launches or forwards.
  void set_local_watermark(std::uint64_t w) {
    if (w > local_watermark_) local_watermark_ = w;
    if (comm_->size() == 1 && local_watermark_ > global_watermark_) {
      global_watermark_ = local_watermark_;
    }
  }

  /// Safe lower bound on min-over-ranks of the local watermarks: the last
  /// completed token circulation's minimum (or better, if a later token
  /// already carried a fresher one through this rank).
  [[nodiscard]] std::uint64_t global_watermark() const { return global_watermark_; }

  /// Rank 0 will not announce termination until the global watermark
  /// reaches `target`.  Default 0: pure Safra quiescence, as the fixpoint
  /// loops expect.
  void require_watermark(std::uint64_t target) { required_watermark_ = target; }

 private:
  void start_probe();
  void forward_token();
  void evaluate_token();
  void announce();

  vmpi::Comm* comm_;
  int tag_base_;

  std::int64_t counter_ = 0;  // app sends − app receives on this rank
  bool black_ = false;        // received an app message since last whitening
  bool terminated_ = false;

  bool has_token_ = false;
  std::int64_t token_q_ = 0;
  bool token_black_ = false;
  std::uint64_t token_probe_id_ = 0;   // id of the held token
  std::uint64_t token_wmark_acc_ = 0;  // watermark min folded into the held token

  std::uint64_t local_watermark_ = 0;     // epochs fully folded on this rank
  std::uint64_t global_watermark_ = 0;    // last completed circulation minimum
  std::uint64_t required_watermark_ = 0;  // rank 0: announce gate
  bool probe_outstanding_ = false;    // rank 0 only
  std::uint64_t probe_id_ = 0;        // rank 0: id of the last launched probe
  std::uint64_t seen_probe_id_ = 0;   // rank>0: highest probe id accepted

  Stats stats_;
};

}  // namespace paralagg::async

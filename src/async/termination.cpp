#include "async/termination.hpp"

#include <cassert>

#include "vmpi/serialize.hpp"

namespace paralagg::async {

namespace {

struct TokenWire {
  std::int64_t q;
  std::uint8_t black;
};

}  // namespace

void TerminationDetector::on_control(int src, int tag, const vmpi::Bytes& payload) {
  (void)src;
  if (tag == terminate_tag()) {
    terminated_ = true;
    return;
  }
  assert(tag == token_tag() && "control message with a foreign tag");
  assert(!has_token_ && "two tokens on one ring");
  vmpi::BufferReader r(payload);
  const auto wire = r.get<TokenWire>();
  token_q_ = wire.q;
  token_black_ = wire.black != 0;
  has_token_ = true;
}

std::size_t TerminationDetector::poll() {
  std::size_t handled = 0;
  handled += comm_->drain(token_tag(),
                          [&](int src, vmpi::Bytes b) { on_control(src, token_tag(), b); });
  handled += comm_->drain(terminate_tag(), [&](int src, vmpi::Bytes b) {
    on_control(src, terminate_tag(), b);
  });
  return handled;
}

void TerminationDetector::try_terminate() {
  if (terminated_) return;

  // Degenerate ring: with one rank there is nobody to hear from, so
  // passivity plus a balanced counter *is* global quiescence.
  if (comm_->size() == 1) {
    if (counter_ == 0) terminated_ = true;
    return;
  }

  if (has_token_) {
    has_token_ = false;
    if (comm_->rank() == 0) {
      evaluate_token();
    } else {
      forward_token();
    }
  }
  if (!terminated_ && comm_->rank() == 0 && !probe_outstanding_) start_probe();
}

void TerminationDetector::start_probe() {
  // Rank 0 whitens itself and launches a white, empty token.  (Any app
  // receive before the token returns re-blackens rank 0 and voids the
  // probe, which is the point.)
  black_ = false;
  vmpi::BufferWriter w(sizeof(TokenWire));
  w.put(TokenWire{0, 0});
  const auto b = w.take();
  comm_->isend(1 % comm_->size(), token_tag(), b);
  probe_outstanding_ = true;
  ++stats_.probes_started;
}

void TerminationDetector::forward_token() {
  vmpi::BufferWriter w(sizeof(TokenWire));
  w.put(TokenWire{token_q_ + counter_,
                  static_cast<std::uint8_t>((token_black_ || black_) ? 1 : 0)});
  const auto b = w.take();
  comm_->isend((comm_->rank() + 1) % comm_->size(), token_tag(), b);
  black_ = false;  // this rank's activity is now folded into the token
  ++stats_.tokens_forwarded;
}

void TerminationDetector::evaluate_token() {
  probe_outstanding_ = false;
  if (!token_black_ && !black_ && token_q_ + counter_ == 0) {
    announce();
  }
  // Failed probe: try_terminate() launches the next one immediately —
  // rank 0 only reaches here while passive, so no spin, the next token
  // round is message-driven like the last.
}

void TerminationDetector::announce() {
  const vmpi::Bytes empty;
  for (int r = 1; r < comm_->size(); ++r) comm_->isend(r, terminate_tag(), empty);
  terminated_ = true;
}

}  // namespace paralagg::async

#include "async/termination.hpp"

#include <algorithm>
#include <span>

#include "vmpi/crc32.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::async {

namespace {

// Token wire format: six little-endian u64 words.
//   [0] accumulated counter q (two's-complement int64)
//   [1] probe id (monotone per ring; rank 0 assigns, forwarders preserve)
//   [2] token colour (0 = white, 1 = black)
//   [3] watermark accumulator (min of the local epoch watermarks folded in
//       so far on this circulation)
//   [4] global watermark (the last fully-circulated minimum, distributed by
//       rank 0 so every holder can refresh its stale-synchronous estimate)
//   [5] CRC-32 of words [0..4], zero-extended
// The CRC catches injected corruption; the probe id catches injected
// duplication and reordering (a token is accepted at most once per rank
// per probe, and rank 0 only accepts the probe it actually launched).
constexpr std::size_t kTokenWords = 6;
constexpr std::size_t kTokenBytes = kTokenWords * sizeof(std::uint64_t);
constexpr std::size_t kTokenCrcBytes = (kTokenWords - 1) * sizeof(std::uint64_t);

vmpi::Bytes pack_token(std::int64_t q, std::uint64_t probe_id, bool black,
                       std::uint64_t wmark_acc, std::uint64_t wmark_global) {
  const std::uint64_t words[5] = {static_cast<std::uint64_t>(q), probe_id,
                                  black ? std::uint64_t{1} : std::uint64_t{0}, wmark_acc,
                                  wmark_global};
  vmpi::BufferWriter w(kTokenBytes);
  for (const std::uint64_t word : words) w.put(word);
  w.put(static_cast<std::uint64_t>(vmpi::crc32(std::as_bytes(std::span(words)))));
  return w.take();
}

struct TokenWire {
  std::int64_t q;
  std::uint64_t probe_id;
  bool black;
  std::uint64_t wmark_acc;
  std::uint64_t wmark_global;
};

TokenWire unpack_token(const vmpi::Bytes& payload) {
  if (payload.size() != kTokenBytes) {
    throw vmpi::FrameDecodeError("safra: token frame has wrong size");
  }
  vmpi::BufferReader r(payload);
  const auto q = r.get<std::uint64_t>();
  const auto probe_id = r.get<std::uint64_t>();
  const auto black = r.get<std::uint64_t>();
  const auto wmark_acc = r.get<std::uint64_t>();
  const auto wmark_global = r.get<std::uint64_t>();
  const auto crc = r.get<std::uint64_t>();
  if (vmpi::crc32({payload.data(), kTokenCrcBytes}) != crc) {
    throw vmpi::FrameDecodeError("safra: token CRC mismatch");
  }
  if (black > 1) {
    throw vmpi::FrameDecodeError("safra: token colour out of range");
  }
  return TokenWire{static_cast<std::int64_t>(q), probe_id, black != 0, wmark_acc,
                   wmark_global};
}

}  // namespace

void TerminationDetector::on_control(int src, int tag, const vmpi::Bytes& payload) {
  (void)src;
  if (tag == terminate_tag()) {
    // Terminate is idempotent; duplicates are harmless by construction.
    terminated_ = true;
    return;
  }
  if (tag != token_tag()) {
    throw vmpi::FrameDecodeError("safra: control message with a foreign tag");
  }
  const TokenWire wire = unpack_token(payload);

  // Duplicate / stale suppression.  Probe ids are strictly increasing, and
  // each probe visits every rank exactly once, so a token whose id is not
  // *new* (or, on rank 0, not the outstanding probe) must be an injected
  // copy or a delayed straggler from an already-decided probe.  Accepting
  // it twice would double-count counters into q and wreck the quiescence
  // decision; dropping it is always safe (at worst the probe fails and
  // rank 0 launches another).
  const bool fresh = comm_->rank() == 0
                         ? (probe_outstanding_ && wire.probe_id == probe_id_)
                         : wire.probe_id > seen_probe_id_;
  if (!fresh || has_token_) {
    comm_->stats().dup_frames_discarded += 1;
    return;
  }
  if (comm_->rank() != 0) seen_probe_id_ = wire.probe_id;
  token_q_ = wire.q;
  token_black_ = wire.black;
  token_probe_id_ = wire.probe_id;
  token_wmark_acc_ = wire.wmark_acc;
  has_token_ = true;
  // The distributed watermark is a completed-circulation minimum, so it is
  // always ≤ the true global minimum — adopting the larger estimate is safe
  // and lets a stale-synchronous holder unblock without waiting a full
  // extra circulation.
  global_watermark_ = std::max(global_watermark_, wire.wmark_global);
}

std::size_t TerminationDetector::poll() {
  std::size_t handled = 0;
  handled += comm_->drain(token_tag(),
                          [&](int src, vmpi::Bytes b) { on_control(src, token_tag(), b); });
  handled += comm_->drain(terminate_tag(), [&](int src, vmpi::Bytes b) {
    on_control(src, terminate_tag(), b);
  });
  return handled;
}

void TerminationDetector::try_terminate() {
  if (terminated_) return;

  // Degenerate ring: with one rank there is nobody to hear from, so
  // passivity plus a balanced counter *is* global quiescence (once the
  // caller's own watermark has reached the required epoch).
  if (comm_->size() == 1) {
    if (counter_ == 0 && local_watermark_ >= required_watermark_) terminated_ = true;
    return;
  }

  if (has_token_) {
    has_token_ = false;
    if (comm_->rank() == 0) {
      evaluate_token();
    } else {
      forward_token();
    }
  }
  if (!terminated_ && comm_->rank() == 0 && !probe_outstanding_) start_probe();
}

void TerminationDetector::start_probe() {
  // Rank 0 whitens itself and launches a white, empty token.  (Any app
  // receive before the token returns re-blackens rank 0 and voids the
  // probe, which is the point.)
  black_ = false;
  ++probe_id_;
  comm_->isend(1 % comm_->size(), token_tag(),
               pack_token(0, probe_id_, false, local_watermark_, global_watermark_));
  probe_outstanding_ = true;
  ++stats_.probes_started;
}

void TerminationDetector::forward_token() {
  comm_->isend((comm_->rank() + 1) % comm_->size(), token_tag(),
               pack_token(token_q_ + counter_, token_probe_id_, token_black_ || black_,
                          std::min(token_wmark_acc_, local_watermark_),
                          global_watermark_));
  black_ = false;  // this rank's activity is now folded into the token
  ++stats_.tokens_forwarded;
}

void TerminationDetector::evaluate_token() {
  probe_outstanding_ = false;
  // A returned token carries the min over every *other* rank's watermark at
  // forwarding time; folding rank 0's own makes it a completed-circulation
  // global minimum — the value the next token distributes.
  global_watermark_ =
      std::max(global_watermark_, std::min(token_wmark_acc_, local_watermark_));
  if (!token_black_ && !black_ && token_q_ + counter_ == 0 &&
      global_watermark_ >= required_watermark_) {
    announce();
  }
  // Failed probe: try_terminate() launches the next one immediately —
  // rank 0 only reaches here while passive, so no spin, the next token
  // round is message-driven like the last.
}

void TerminationDetector::announce() {
  const vmpi::Bytes empty;
  for (int r = 1; r < comm_->size(); ++r) comm_->isend(r, terminate_tag(), empty);
  terminated_ = true;
}

}  // namespace paralagg::async

#pragma once

// Asynchronous fixpoint executor: nonblocking delta propagation.
//
// Runs the same Program/Stratum IR as core::Engine, but the recursive loop
// has no collectives at all.  Where the BSP engine's iteration is
//
//   plan vote → intra-bucket alltoallv → local join → router flush
//   (alltoallv) → materialize → termination allreduce,
//
// each rank here loops independently:
//
//   drain inbound messages → materialize staged rows → join the fresh
//   delta frontier locally → isend generated rows point-to-point,
//
// and quiescence is decided by a Safra token ring (async::TerminationDetector)
// instead of an allreduce.  Two message kinds circulate, both framed like
// the ExchangeRouter wire format ([id | row_count | rows] in value_t units,
// via TypedWriter/TypedReader, sealed with the core/wire.hpp CRC trailer —
// the trailer's sequence number is what lets receivers discard injected
// duplicate frames before they unbalance the Safra counters):
//
//   * PROBE (per join rule): a fresh delta row of the recursive side,
//     replicated from its owner to every rank holding a sub-bucket of the
//     static side's bucket — the asynchronous double of the BSP
//     intra-bucket exchange.  Receivers join it against their local static
//     partition.
//   * STAGE (per target relation): a generated row, sent to the rank owning
//     its independent columns, where the fused dedup/lattice-aggregation
//     decides whether it is a strict ascent (→ new delta row) or noise.
//
// Safety: this schedule delivers deltas stale and out of order, so it is
// only sound when every recursive aggregate is a *genuine* semilattice
// join — commutative, associative, and idempotent (RecursiveAggregator::
// idempotent()).  Then the fixpoint is the join over all generated values,
// independent of delivery order, and bit-identical to the BSP engine's.
// check_supported() rejects everything else (PageRank's kRefresh $SUM,
// antijoins, non-delta-driven loop rules) with a diagnostic.
//
// Init rules and inter-stratum boundaries still use the collective path:
// the prohibition is on per-iteration collectives inside the loop, which
// is where the barrier-wait cost of skew lives.

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/program.hpp"
#include "core/profile.hpp"

namespace paralagg::async {

/// When buffered outbound rows are put on the wire.
enum class AsyncRouting : std::uint8_t {
  /// Flush every destination once per local round (densest messages, most
  /// staleness) — the point-to-point analogue of the BSP router flush.
  kDense,
  /// Send to a destination as soon as its buffer reaches batch_rows rows
  /// (eager, latency-oriented); stragglers go out with the round flush.
  kOwnerDirect,
};

struct AsyncConfig {
  AsyncRouting routing = AsyncRouting::kOwnerDirect;
  /// Rows buffered per (relation, destination) before an eager send
  /// (kOwnerDirect only).
  std::size_t batch_rows = 128;
  /// Local rounds an outbound row may linger before a forced full flush.
  /// 1 = flush every round; larger values trade message count for
  /// staleness (still sound: the lattice join is order-insensitive).
  std::size_t max_staleness = 1;
  /// Safety net against runaway local loops (mirrors EngineConfig's
  /// max_iterations; exceeding it aborts the world).
  std::size_t max_rounds = 1'000'000;
};

/// Per-rank counters for one engine's async loops (cumulative over strata).
struct AsyncLoopStats {
  std::uint64_t rounds = 0;            // local rounds with actual work
  std::uint64_t messages_sent = 0;     // app messages (stage + probe)
  std::uint64_t messages_received = 0;
  std::uint64_t stage_rows_sent = 0;   // generated rows shipped to owners
  std::uint64_t probe_rows_sent = 0;   // delta rows replicated for joining
  std::uint64_t rows_loopback = 0;     // self-owned rows staged directly
  /// Collective calls observed during the loop (excludes init rules and the
  /// post-loop stratum summary).  The whole point is that this stays 0.
  std::uint64_t collective_calls_in_loop = 0;
  /// Wall seconds parked in blocking recv while passive (the async
  /// counterpart of BSP barrier-wait time).
  double blocked_seconds = 0;
  std::uint64_t token_probes = 0;      // Safra probes rank 0 launched
  std::uint64_t tokens_forwarded = 0;
};

class AsyncEngine {
 public:
  explicit AsyncEngine(vmpi::Comm& comm, AsyncConfig cfg = {})
      : comm_(&comm), cfg_(cfg) {}

  [[nodiscard]] core::RankProfile& rank_profile() { return profile_; }
  [[nodiscard]] const AsyncConfig& config() const { return cfg_; }
  [[nodiscard]] const AsyncLoopStats& loop_stats() const { return loop_stats_; }

  /// Throws std::invalid_argument naming the first construct the
  /// asynchronous schedule cannot run soundly (non-fixpoint strata,
  /// kRefresh or non-idempotent aggregates, antijoins, loop rules not
  /// driven by a recursive delta).
  static void check_supported(const core::Program& program);

  /// Execute one stratum: init rules on the collective path, then the
  /// nonblocking loop to quiescence.  Collective at entry and exit only.
  core::StratumResult run_stratum(const core::Stratum& stratum);

  /// Validate, check_supported, execute all strata, assemble the cross-rank
  /// summary.  Collective; the RunResult is identical on every rank.
  core::RunResult run(core::Program& program);

 private:
  vmpi::Comm* comm_;
  AsyncConfig cfg_;
  core::RankProfile profile_;
  AsyncLoopStats loop_stats_;
  std::uint64_t stratum_seq_ = 0;  // offsets detector tags per stratum
};

}  // namespace paralagg::async

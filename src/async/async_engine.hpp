#pragma once

// Asynchronous fixpoint executor: nonblocking delta propagation.
//
// Runs the same Program/Stratum IR as core::Engine, but the recursive loop
// has no collectives at all.  Where the BSP engine's iteration is
//
//   plan vote → intra-bucket alltoallv → local join → router flush
//   (alltoallv) → materialize → termination allreduce,
//
// each rank here loops independently:
//
//   drain inbound messages → materialize staged rows → join the fresh
//   delta frontier locally → isend generated rows point-to-point,
//
// and quiescence is decided by a Safra token ring (async::TerminationDetector)
// instead of an allreduce.  Two message kinds circulate, both framed like
// the ExchangeRouter wire format ([id | row_count | rows] in value_t units,
// via TypedWriter/TypedReader, sealed with the core/wire.hpp CRC trailer —
// the trailer's sequence number is what lets receivers discard injected
// duplicate frames before they unbalance the Safra counters):
//
//   * PROBE (per join rule): a fresh delta row of the recursive side,
//     replicated from its owner to every rank holding a sub-bucket of the
//     static side's bucket — the asynchronous double of the BSP
//     intra-bucket exchange.  Receivers join it against their local static
//     partition.
//   * STAGE (per target relation): a generated row, sent to the rank owning
//     its independent columns, where the fused dedup/lattice-aggregation
//     decides whether it is a strict ascent (→ new delta row) or noise.
//
// Safety: this schedule delivers deltas stale and out of order, so it is
// only sound when every recursive aggregate is a *genuine* semilattice
// join — commutative, associative, and idempotent (RecursiveAggregator::
// idempotent()).  Then the fixpoint is the join over all generated values,
// independent of delivery order, and bit-identical to the BSP engine's.
// check_supported() rejects everything else (antijoins, non-delta-driven
// loop rules, and — unless stale-synchronous mode is enabled — kRefresh /
// non-idempotent aggregates) with one typed UnsupportedProgramError that
// lists every violation once.
//
// Stale-synchronous mode (AsyncConfig::ssp, DESIGN.md §12): bounded-round
// Jacobi strata (fixpoint = false, e.g. PageRank) run as an epoch-pipelined
// exactly-once protocol instead of being rejected.  Every contribution is
// tagged (source rank, epoch) at frame granularity; each owner folds a
// given (source, epoch) partial exactly once — injected duplicates and
// retransmits are discarded against a per-source epoch ledger *before* the
// fold — so commutative+associative aggregates that are not idempotent
// ($SUM: RecursiveAggregator::exactly_once_capable()) reach fixpoints
// bit-identical to the BSP engine's.  Epoch watermarks ride the Safra
// token: the ring-wide minimum of folded epochs is both the flow-control
// signal that keeps a rank at most `ssp_staleness` epochs ahead of the
// slowest peer and the gate that keeps rank 0 from announcing termination
// before every rank has folded every epoch.
//
// Init rules and inter-stratum boundaries still use the collective path:
// the prohibition is on per-iteration collectives inside the loop, which
// is where the barrier-wait cost of skew lives.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/program.hpp"
#include "core/profile.hpp"

namespace paralagg::async {

/// Typed rejection for AsyncConfig values that cannot describe a run
/// (max_staleness == 0, batch_rows == 0, ...).  A config error is the
/// caller's flag mistake — distinct from UnsupportedProgramError, which
/// indicts the program, not the knobs.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Typed rejection for programs the asynchronous schedule cannot run
/// soundly.  One instance carries *every* violation (deduplicated), so a
/// program with two offending rules produces one diagnostic, not two.
class UnsupportedProgramError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// When buffered outbound rows are put on the wire.
enum class AsyncRouting : std::uint8_t {
  /// Flush every destination once per local round (densest messages, most
  /// staleness) — the point-to-point analogue of the BSP router flush.
  kDense,
  /// Send to a destination as soon as its buffer reaches batch_rows rows
  /// (eager, latency-oriented); stragglers go out with the round flush.
  kOwnerDirect,
};

struct AsyncConfig {
  AsyncRouting routing = AsyncRouting::kOwnerDirect;
  /// Rows buffered per (relation, destination) before an eager send
  /// (kOwnerDirect only).
  std::size_t batch_rows = 128;
  /// Local rounds an outbound row may linger before a forced full flush.
  /// 1 = flush every round; larger values trade message count for
  /// staleness (still sound: the lattice join is order-insensitive).
  /// 0 is a ConfigError: a row that may linger for zero rounds describes
  /// no schedule (it used to be silently clamped to 1).
  std::size_t max_staleness = 1;
  /// Safety net against runaway local loops (mirrors EngineConfig's
  /// max_iterations; exceeding it aborts the world).
  std::size_t max_rounds = 1'000'000;
  /// Stale-synchronous mode: run bounded-round Jacobi strata (fixpoint =
  /// false) under the epoch-pipelined exactly-once protocol instead of
  /// rejecting them.  Off by default — SSP admits non-idempotent
  /// aggregates, so it is an explicit opt-in.
  bool ssp = false;
  /// SSP flow-control window: how many epochs a rank may scan ahead of the
  /// watermark (the token-carried minimum of folded epochs across ranks).
  /// 0 is honest lockstep — every rank waits for the ring to confirm the
  /// previous epoch before scanning the next; >= 1 pipelines epochs.
  /// Exactness never depends on this value: the epoch ledger makes every
  /// setting reach the same bit-identical fixpoint.
  std::size_t ssp_staleness = 1;
};

/// Per-rank counters for one engine's async loops (cumulative over strata).
struct AsyncLoopStats {
  std::uint64_t rounds = 0;            // local rounds with actual work
  std::uint64_t messages_sent = 0;     // app messages (stage + probe)
  std::uint64_t messages_received = 0;
  std::uint64_t stage_rows_sent = 0;   // generated rows shipped to owners
  std::uint64_t probe_rows_sent = 0;   // delta rows replicated for joining
  std::uint64_t rows_loopback = 0;     // self-owned rows staged directly
  /// Collective calls observed during the loop (excludes init rules and the
  /// post-loop stratum summary).  The whole point is that this stays 0.
  std::uint64_t collective_calls_in_loop = 0;
  /// Wall seconds parked in blocking recv while passive (the async
  /// counterpart of BSP barrier-wait time).
  double blocked_seconds = 0;
  std::uint64_t token_probes = 0;      // Safra probes rank 0 launched
  std::uint64_t tokens_forwarded = 0;

  // Stale-synchronous mode only (zero for fixpoint loops).
  std::uint64_t ssp_epochs = 0;  // epochs this rank folded
  /// (source, epoch) partial frames folded into an accumulator — the
  /// exactly-once invariant is that this equals nranks * epochs on every
  /// rank, no matter what the fault plan injected.
  std::uint64_t ssp_partials_folded = 0;
  /// Frames discarded by the epoch ledger (injected duplicates and
  /// retransmits caught before the fold).
  std::uint64_t ssp_ledger_discards = 0;
};

class AsyncEngine {
 public:
  explicit AsyncEngine(vmpi::Comm& comm, AsyncConfig cfg = {})
      : comm_(&comm), cfg_(cfg) {}

  [[nodiscard]] core::RankProfile& rank_profile() { return profile_; }
  [[nodiscard]] const AsyncConfig& config() const { return cfg_; }
  [[nodiscard]] const AsyncLoopStats& loop_stats() const { return loop_stats_; }

  /// Throws UnsupportedProgramError listing every construct the
  /// asynchronous schedule cannot run soundly under `cfg` (antijoins, loop
  /// rules not driven by a recursive delta, and — without cfg.ssp —
  /// non-fixpoint strata and kRefresh / non-idempotent aggregates).  All
  /// violations are collected and deduplicated into one diagnostic.
  static void check_supported(const core::Program& program, const AsyncConfig& cfg = {});

  /// Throws ConfigError on knob values that describe no schedule
  /// (max_staleness == 0, batch_rows == 0).  run() calls this first.
  static void validate_config(const AsyncConfig& cfg);

  /// Execute one stratum: init rules on the collective path, then the
  /// nonblocking loop to quiescence.  Collective at entry and exit only.
  core::StratumResult run_stratum(const core::Stratum& stratum);

  /// Validate, check_supported, execute all strata, assemble the cross-rank
  /// summary.  Collective; the RunResult is identical on every rank.
  core::RunResult run(core::Program& program);

 private:
  vmpi::Comm* comm_;
  AsyncConfig cfg_;
  core::RankProfile profile_;
  AsyncLoopStats loop_stats_;
  std::uint64_t stratum_seq_ = 0;  // offsets detector tags per stratum
};

}  // namespace paralagg::async

// Fault sweep: cost and outcome of running the engines under an adversarial
// (but seeded, replayable) network.
//
// Sweeps injected drop/dup/reorder/corrupt rates and a rank kill over SSSP
// on both engines (BSP with the Bruck exchange and the async
// delta-propagation loop — the two paths whose traffic rides the faultable
// mailboxes), then over PageRank in stale-synchronous mode at two staleness
// windows.  Every fault point runs twice: once under the default retry
// budget ("healed" — the reliable channel retransmits until the fixpoint is
// bit-identical) and once with the budget zeroed ("legacy" — the bare
// fail-stop contract of the pre-reliable transport).  Reports, per leg, the
// outcome and its price:
//
//   outcome   — "exact" (bit-identical fixpoint) or "abort:<what>" (typed
//               FaultError); anything else is a bug and exits nonzero
//   wall_s    — end-to-end seconds (aborted legs pay the watchdog deadline)
//   injected  — faults the plan actually fired, summed over ranks
//   retrans   — data frames the reliable channel re-sent, summed over ranks
//
// Also measures the checkpoint tax: the same clean run with a manifest
// written every iteration, so the overhead column prices `--checkpoint-every`.
//
// With --verdict the sweep turns into a gate: low-rate drop and corrupt
// legs must heal bit-identically with retransmits > 0, the kill legs must
// still abort typed (a dead rank is not healable), and the legacy drop legs
// must keep their fail-stop abort.  CI runs this as the heal-smoke job.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Leg {
  std::string engine;
  std::string fault;
  std::string mode;  // "healed" (default retry budget) or "legacy" (retry=0)
  std::string outcome;
  double wall_s = 0;
  std::uint64_t injected = 0;
  std::uint64_t dups_discarded = 0;
  std::uint64_t retransmits = 0;
};

struct SweepPoint {
  const char* name;
  vmpi::FaultPlan plan;
};

vmpi::RetryPolicy legacy_policy() {
  vmpi::RetryPolicy p;
  p.max_attempts = 0;
  return p;
}

Leg run_once(const graph::Graph& g, int ranks, bool use_async,
             const SweepPoint& point, const vmpi::RetryPolicy& retry,
             double watchdog, const std::vector<core::Tuple>& reference,
             std::size_t checkpoint_every = 0) {
  Leg leg;
  leg.engine = use_async ? "async" : "bsp+bruck";
  leg.fault = point.name;
  leg.mode = retry.enabled() ? "healed" : "legacy";

  vmpi::RunOptions options;
  options.fault = point.plan;
  options.retry = retry;
  options.watchdog_seconds = watchdog;

  std::vector<core::Tuple> rows;
  bool aborted = false;
  std::string what;
  double wall = 0;
  std::vector<vmpi::CommStats> per_rank;
  const std::string ckpt_path = "/tmp/paralagg_fault_sweep_manifest.bin";
  vmpi::run_collect(
      ranks, options,
      [&](vmpi::Comm& comm) {
        queries::SsspOptions opts;
        opts.sources = {0};
        opts.collect_distances = true;
        opts.tuning.use_async = use_async;
        opts.tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
        if (checkpoint_every > 0) {
          opts.tuning.engine.checkpoint_every = checkpoint_every;
          opts.tuning.engine.checkpoint_path = ckpt_path;
        }
        const auto r = run_sssp(comm, g, opts);
        if (comm.rank() == 0) {
          rows = r.distances;
          aborted = r.run.aborted_fault;
          what = r.run.fault_what;
          wall = r.run.wall_seconds;
        }
      },
      per_rank);
  if (checkpoint_every > 0) std::remove(ckpt_path.c_str());

  leg.wall_s = wall;
  for (const auto& s : per_rank) {
    leg.injected += s.faults_dropped + s.faults_duplicated + s.faults_delayed +
                    s.faults_corrupted;
    leg.dups_discarded += s.dup_frames_discarded;
    leg.retransmits += s.retransmits;
  }
  if (aborted) {
    leg.outcome = "abort: " + what.substr(0, 48);
  } else if (!reference.empty() && rows != reference) {
    leg.outcome = "WRONG FIXPOINT";  // the one outcome the design forbids
  } else {
    leg.outcome = "exact";
  }
  return leg;
}

// Stale-synchronous legs ride PageRank, not SSSP: SSP accepts only
// bounded-round ($SUM refresh) strata, and its exactness claim is the
// stronger one — bit-identity to the *BSP* oracle, with the epoch ledger
// (not lattice idempotence) absorbing duplicated and reordered frames.
Leg run_ssp_pagerank(const graph::Graph& g, int ranks, std::size_t staleness,
                     const SweepPoint& point, const vmpi::RetryPolicy& retry,
                     double watchdog,
                     const std::vector<core::Tuple>& reference) {
  Leg leg;
  leg.engine = "ssp s=" + std::to_string(staleness);
  leg.fault = point.name;
  leg.mode = retry.enabled() ? "healed" : "legacy";

  vmpi::RunOptions options;
  options.fault = point.plan;
  options.retry = retry;
  options.watchdog_seconds = watchdog;

  std::vector<core::Tuple> rows;
  bool aborted = false;
  std::string what;
  std::vector<vmpi::CommStats> per_rank;
  vmpi::run_collect(
      ranks, options,
      [&](vmpi::Comm& comm) {
        queries::PagerankOptions opts;
        opts.rounds = 8;
        opts.collect_ranks = true;
        opts.tuning.use_async = true;
        opts.tuning.async.ssp = true;
        opts.tuning.async.ssp_staleness = staleness;
        const auto r = run_pagerank(comm, g, opts);
        if (comm.rank() == 0) {
          rows = r.ranks;
          aborted = r.run.aborted_fault;
          what = r.run.fault_what;
          leg.wall_s = r.run.wall_seconds;
        }
      },
      per_rank);
  for (const auto& s : per_rank) {
    leg.injected += s.faults_dropped + s.faults_duplicated + s.faults_delayed +
                    s.faults_corrupted;
    leg.dups_discarded += s.dup_frames_discarded;
    leg.retransmits += s.retransmits;
  }
  if (aborted) {
    leg.outcome = "abort: " + what.substr(0, 48);
  } else if (!reference.empty() && rows != reference) {
    leg.outcome = "WRONG FIXPOINT";
  } else {
    leg.outcome = "exact";
  }
  return leg;
}

void emit(const Leg& l) {
  std::printf("%-10s  %-12s  %-6s  %8.3fs  %7llu  %7llu  %7llu  %s\n",
              l.engine.c_str(), l.fault.c_str(), l.mode.c_str(), l.wall_s,
              static_cast<unsigned long long>(l.injected),
              static_cast<unsigned long long>(l.retransmits),
              static_cast<unsigned long long>(l.dups_discarded),
              l.outcome.c_str());
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  bool verdict = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verdict") == 0) {
      verdict = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int ranks = positional.size() > 0 ? std::atoi(positional[0]) : 6;
  const int scale = positional.size() > 1 ? std::atoi(positional[1]) : 10;
  const double watchdog = positional.size() > 2 ? std::atof(positional[2]) : 3.0;

  banner("fault sweep: outcome and cost under an adversarial network",
         "n/a (the paper assumes a perfect interconnect; this prices dropping that assumption)",
         "SSSP per (engine, fault, mode) leg; every leg must end 'exact' or 'abort', never wrong/hung");

  const auto g = graph::make_rmat({.scale = scale, .edge_factor = 6, .seed = 77});

  SweepPoint clean{"clean", {}};
  SweepPoint drop{"drop 0.5%", {}};
  drop.plan.seed = 101;
  drop.plan.drop_prob = 0.005;
  SweepPoint dup{"dup 5%", {}};
  dup.plan.seed = 102;
  dup.plan.dup_prob = 0.05;
  SweepPoint reorder{"reorder 5%", {}};
  reorder.plan.seed = 103;
  reorder.plan.delay_prob = 0.05;
  reorder.plan.max_delay_msgs = 4;
  SweepPoint corrupt{"corrupt 1%", {}};
  corrupt.plan.seed = 104;
  corrupt.plan.corrupt_prob = 0.01;
  SweepPoint kill{"kill r1@e2", {}};
  kill.plan.kill_rank = 1;
  kill.plan.kill_epoch = 2;

  const vmpi::RetryPolicy healed{};
  const vmpi::RetryPolicy legacy = legacy_policy();

  std::printf("%-10s  %-12s  %-6s  %9s  %7s  %7s  %7s  %s\n", "engine",
              "fault", "mode", "wall", "injected", "retrans", "deduped",
              "outcome");
  rule(80);

  bool violated = false;
  std::vector<Leg> legs;
  for (const bool use_async : {false, true}) {
    // Clean reference for this engine (fixpoints agree across engines, but
    // wall-clock baselines do not).
    const auto base =
        run_once(g, ranks, use_async, clean, healed, /*watchdog=*/0, {});
    if (base.outcome != "exact") {
      std::printf("clean %s run failed: %s\n", base.engine.c_str(),
                  base.outcome.c_str());
      return 1;
    }
    emit(base);

    // Reference rows for exactness checks.
    std::vector<core::Tuple> reference;
    {
      vmpi::run(ranks, [&](vmpi::Comm& comm) {
        queries::SsspOptions opts;
        opts.sources = {0};
        opts.collect_distances = true;
        opts.tuning.use_async = use_async;
        opts.tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
        const auto r = run_sssp(comm, g, opts);
        if (comm.rank() == 0) reference = r.distances;
      });
    }

    if (!use_async) {
      auto ckpt = run_once(g, ranks, use_async, clean, healed, 0, reference,
                           /*checkpoint_every=*/1);
      ckpt.fault = "ckpt every=1";
      emit(ckpt);
      violated |= ckpt.outcome != "exact";
    }

    for (const auto& point : {drop, dup, reorder, corrupt, kill}) {
      for (const auto& retry : {healed, legacy}) {
        const auto leg =
            run_once(g, ranks, use_async, point, retry, watchdog, reference);
        emit(leg);
        violated |= leg.outcome == "WRONG FIXPOINT";
        legs.push_back(leg);
      }
    }
  }

  // Stale-synchronous matrix: PageRank under the same fault points, at two
  // staleness windows, against the BSP engine's fixpoint.  The kill point is
  // skipped here — rank death is engine-independent and already priced above.
  std::vector<core::Tuple> pr_reference;
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = 8;
    opts.collect_ranks = true;
    const auto r = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) pr_reference = r.ranks;
  });
  if (pr_reference.empty()) {
    std::printf("BSP pagerank reference failed\n");
    return 1;
  }
  for (const std::size_t s : {std::size_t{1}, std::size_t{4}}) {
    const auto base =
        run_ssp_pagerank(g, ranks, s, clean, healed, 0, pr_reference);
    emit(base);
    violated |= base.outcome != "exact";
    for (const auto& point : {drop, dup, reorder, corrupt}) {
      for (const auto& retry : {healed, legacy}) {
        const auto leg = run_ssp_pagerank(g, ranks, s, point, retry, watchdog,
                                          pr_reference);
        emit(leg);
        violated |= leg.outcome == "WRONG FIXPOINT";
        legs.push_back(leg);
        // The ledger, unlike an abort, is the designed response to dup and
        // reorder — in both modes; it predates the reliable channel.
        if (point.plan.dup_prob > 0 || point.plan.delay_prob > 0) {
          violated |= leg.outcome != "exact";
        }
      }
    }
  }

  rule(80);
  std::printf("\nhealed legs ride the reliable channel: drop and corrupt retransmit to a\n");
  std::printf("bit-identical fixpoint (retrans column); dup/reorder stay exact via frame\n");
  std::printf("dedup, lattice idempotence, and on ssp the per-(source, epoch) ledger.\n");
  std::printf("legacy legs (retry=0) keep the fail-stop contract: drop aborts typed within\n");
  std::printf("the %.1fs watchdog; a killed rank aborts typed in either mode.\n", watchdog);

  if (verdict) {
    int failures = 0;
    const auto fail = [&](const Leg& l, const char* why) {
      std::printf(
          "VERDICT FAIL: %s / %s / %s — %s (outcome: %s, retransmits: %llu)\n",
          l.engine.c_str(), l.fault.c_str(), l.mode.c_str(), why,
          l.outcome.c_str(), static_cast<unsigned long long>(l.retransmits));
      ++failures;
    };
    for (const auto& l : legs) {
      const bool is_drop = starts_with(l.fault, "drop");
      const bool is_corrupt = starts_with(l.fault, "corrupt");
      const bool is_kill = starts_with(l.fault, "kill");
      if (is_kill) {
        // A dead rank is not healable; the retry budget must not convert
        // rank death into a hang or a wrong answer.
        if (!starts_with(l.outcome, "abort")) {
          fail(l, "kill must abort typed in every mode");
        }
        continue;
      }
      // The drop/corrupt checks gate on injected > 0: at small scales a
      // low-rate plan can fire nothing, and a leg with no faults has
      // nothing to heal (and nothing for the legacy mode to abort on).
      if (l.injected == 0) continue;
      if (l.mode == "healed" && (is_drop || is_corrupt)) {
        if (l.outcome != "exact") {
          fail(l, "low-rate drop/corrupt must heal bit-identically");
        } else if (l.retransmits == 0) {
          fail(l, "healed leg recorded no retransmits — channel not engaged");
        }
      }
      if (l.mode == "legacy" && is_drop && !starts_with(l.outcome, "abort")) {
        fail(l, "retry=0 drop must keep the fail-stop abort");
      }
    }
    if (failures > 0 || violated) {
      std::printf("\nVERDICT: FAIL (%d gate failure(s)%s)\n", failures,
                  violated ? ", plus a wrong fixpoint" : "");
      return 1;
    }
    std::printf("\nVERDICT: PASS — drop/corrupt heal with retransmits, kill aborts typed,\n");
    std::printf("legacy fail-stop preserved.\n");
    return 0;
  }

  if (violated) {
    std::printf("INVARIANT VIOLATED: some leg produced a wrong fixpoint.\n");
    return 1;
  }
  return 0;
}

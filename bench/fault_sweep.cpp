// Fault sweep: cost and outcome of running the engines under an adversarial
// (but seeded, replayable) network.
//
// Sweeps injected drop/dup/reorder/corrupt rates over SSSP on both engines
// (BSP with the Bruck exchange and the async delta-propagation loop — the
// two paths whose traffic rides the faultable mailboxes), then over
// PageRank in stale-synchronous mode at two staleness windows (the epoch
// ledger's dup/reorder legs must stay bit-identical to the BSP oracle, not
// merely converge).  Reports, per leg, the outcome and its price:
//
//   outcome   — "exact" (bit-identical fixpoint) or "abort:<what>" (typed
//               FaultError); anything else is a bug and exits nonzero
//   wall_s    — end-to-end seconds (aborted legs pay the watchdog deadline)
//   overhead  — wall_s / clean wall_s of the same engine
//   injected  — faults the plan actually fired, summed over ranks
//
// Also measures the checkpoint tax: the same clean run with a manifest
// written every iteration, so the overhead column prices `--checkpoint-every`.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Leg {
  std::string engine;
  std::string fault;
  std::string outcome;
  double wall_s = 0;
  std::uint64_t injected = 0;
  std::uint64_t dups_discarded = 0;
};

struct SweepPoint {
  const char* name;
  vmpi::FaultPlan plan;
};

Leg run_once(const graph::Graph& g, int ranks, bool use_async,
             const SweepPoint& point, double watchdog,
             const std::vector<core::Tuple>& reference,
             std::size_t checkpoint_every = 0) {
  Leg leg;
  leg.engine = use_async ? "async" : "bsp+bruck";
  leg.fault = point.name;

  vmpi::RunOptions options;
  options.fault = point.plan;
  options.watchdog_seconds = watchdog;

  std::vector<core::Tuple> rows;
  bool aborted = false;
  std::string what;
  double wall = 0;
  std::vector<vmpi::CommStats> per_rank;
  const std::string ckpt_path = "/tmp/paralagg_fault_sweep_manifest.bin";
  vmpi::run_collect(
      ranks, options,
      [&](vmpi::Comm& comm) {
        queries::SsspOptions opts;
        opts.sources = {0};
        opts.collect_distances = true;
        opts.tuning.use_async = use_async;
        opts.tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
        if (checkpoint_every > 0) {
          opts.tuning.engine.checkpoint_every = checkpoint_every;
          opts.tuning.engine.checkpoint_path = ckpt_path;
        }
        const auto r = run_sssp(comm, g, opts);
        if (comm.rank() == 0) {
          rows = r.distances;
          aborted = r.run.aborted_fault;
          what = r.run.fault_what;
          wall = r.run.wall_seconds;
        }
      },
      per_rank);
  if (checkpoint_every > 0) std::remove(ckpt_path.c_str());

  leg.wall_s = wall;
  for (const auto& s : per_rank) {
    leg.injected += s.faults_dropped + s.faults_duplicated + s.faults_delayed +
                    s.faults_corrupted;
    leg.dups_discarded += s.dup_frames_discarded;
  }
  if (aborted) {
    leg.outcome = "abort: " + what.substr(0, 48);
  } else if (!reference.empty() && rows != reference) {
    leg.outcome = "WRONG FIXPOINT";  // the one outcome the design forbids
  } else {
    leg.outcome = "exact";
  }
  return leg;
}

// Stale-synchronous legs ride PageRank, not SSSP: SSP accepts only
// bounded-round ($SUM refresh) strata, and its exactness claim is the
// stronger one — bit-identity to the *BSP* oracle, with the epoch ledger
// (not lattice idempotence) absorbing duplicated and reordered frames.
Leg run_ssp_pagerank(const graph::Graph& g, int ranks, std::size_t staleness,
                     const SweepPoint& point, double watchdog,
                     const std::vector<core::Tuple>& reference) {
  Leg leg;
  leg.engine = "ssp s=" + std::to_string(staleness);
  leg.fault = point.name;

  vmpi::RunOptions options;
  options.fault = point.plan;
  options.watchdog_seconds = watchdog;

  std::vector<core::Tuple> rows;
  bool aborted = false;
  std::string what;
  std::vector<vmpi::CommStats> per_rank;
  vmpi::run_collect(
      ranks, options,
      [&](vmpi::Comm& comm) {
        queries::PagerankOptions opts;
        opts.rounds = 8;
        opts.collect_ranks = true;
        opts.tuning.use_async = true;
        opts.tuning.async.ssp = true;
        opts.tuning.async.ssp_staleness = staleness;
        const auto r = run_pagerank(comm, g, opts);
        if (comm.rank() == 0) {
          rows = r.ranks;
          aborted = r.run.aborted_fault;
          what = r.run.fault_what;
          leg.wall_s = r.run.wall_seconds;
        }
      },
      per_rank);
  for (const auto& s : per_rank) {
    leg.injected += s.faults_dropped + s.faults_duplicated + s.faults_delayed +
                    s.faults_corrupted;
    leg.dups_discarded += s.dup_frames_discarded;
  }
  if (aborted) {
    leg.outcome = "abort: " + what.substr(0, 48);
  } else if (!reference.empty() && rows != reference) {
    leg.outcome = "WRONG FIXPOINT";
  } else {
    leg.outcome = "exact";
  }
  return leg;
}

void emit(const Leg& l) {
  std::printf("%-10s  %-14s  %8.3fs  %7llu  %7llu  %s\n", l.engine.c_str(),
              l.fault.c_str(), l.wall_s,
              static_cast<unsigned long long>(l.injected),
              static_cast<unsigned long long>(l.dups_discarded),
              l.outcome.c_str());
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 6;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 10;
  const double watchdog = argc > 3 ? std::atof(argv[3]) : 3.0;

  banner("fault sweep: outcome and cost under an adversarial network",
         "n/a (the paper assumes a perfect interconnect; this prices dropping that assumption)",
         "SSSP per (engine, fault) leg; every leg must end 'exact' or 'abort', never wrong/hung");

  const auto g = graph::make_rmat({.scale = scale, .edge_factor = 6, .seed = 77});

  SweepPoint clean{"clean", {}};
  SweepPoint drop{"drop 0.5%", {}};
  drop.plan.seed = 101;
  drop.plan.drop_prob = 0.005;
  SweepPoint dup{"dup 5%", {}};
  dup.plan.seed = 102;
  dup.plan.dup_prob = 0.05;
  SweepPoint reorder{"reorder 5%", {}};
  reorder.plan.seed = 103;
  reorder.plan.delay_prob = 0.05;
  reorder.plan.max_delay_msgs = 4;
  SweepPoint corrupt{"corrupt 1%", {}};
  corrupt.plan.seed = 104;
  corrupt.plan.corrupt_prob = 0.01;

  std::printf("%-10s  %-14s  %9s  %7s  %7s  %s\n", "engine", "fault", "wall",
              "injected", "deduped", "outcome");
  rule(72);

  bool violated = false;
  for (const bool use_async : {false, true}) {
    // Clean reference for this engine (fixpoints agree across engines, but
    // wall-clock baselines do not).
    const auto base = run_once(g, ranks, use_async, clean, /*watchdog=*/0, {});
    if (base.outcome != "exact") {
      std::printf("clean %s run failed: %s\n", base.engine.c_str(),
                  base.outcome.c_str());
      return 1;
    }
    emit(base);

    // Reference rows for exactness checks.
    std::vector<core::Tuple> reference;
    {
      vmpi::run(ranks, [&](vmpi::Comm& comm) {
        queries::SsspOptions opts;
        opts.sources = {0};
        opts.collect_distances = true;
        opts.tuning.use_async = use_async;
        opts.tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
        const auto r = run_sssp(comm, g, opts);
        if (comm.rank() == 0) reference = r.distances;
      });
    }

    if (!use_async) {
      auto ckpt = run_once(g, ranks, use_async, clean, 0, reference,
                           /*checkpoint_every=*/1);
      ckpt.fault = "ckpt every=1";
      emit(ckpt);
      violated |= ckpt.outcome != "exact";
    }

    for (const auto& point : {drop, dup, reorder, corrupt}) {
      const auto leg = run_once(g, ranks, use_async, point, watchdog, reference);
      emit(leg);
      violated |= leg.outcome == "WRONG FIXPOINT";
    }
  }

  // Stale-synchronous matrix: PageRank under the same fault points, at two
  // staleness windows, against the BSP engine's fixpoint.
  std::vector<core::Tuple> pr_reference;
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = 8;
    opts.collect_ranks = true;
    const auto r = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) pr_reference = r.ranks;
  });
  if (pr_reference.empty()) {
    std::printf("BSP pagerank reference failed\n");
    return 1;
  }
  for (const std::size_t s : {std::size_t{1}, std::size_t{4}}) {
    const auto base = run_ssp_pagerank(g, ranks, s, clean, 0, pr_reference);
    emit(base);
    violated |= base.outcome != "exact";
    for (const auto& point : {drop, dup, reorder, corrupt}) {
      const auto leg = run_ssp_pagerank(g, ranks, s, point, watchdog, pr_reference);
      emit(leg);
      violated |= leg.outcome == "WRONG FIXPOINT";
      // The ledger, unlike an abort, is the designed response to these.
      if (point.plan.dup_prob > 0 || point.plan.delay_prob > 0) {
        violated |= leg.outcome != "exact";
      }
    }
  }

  rule(72);
  std::printf("\ndup/reorder legs stay exact (frame dedup + lattice idempotence;\n");
  std::printf("on the ssp legs, the per-(source, epoch) ledger — see the deduped column);\n");
  std::printf("drop legs abort typed within the %.1fs watchdog instead of hanging.\n", watchdog);
  if (violated) {
    std::printf("INVARIANT VIOLATED: some leg produced a wrong fixpoint.\n");
    return 1;
  }
  return 0;
}

// Sorted-batch probing vs arrival-order probing: what does sorting the
// probe batch and deduplicating descents buy in the local join kernel?
//
// Two kernels over the same single-rule SSSP stratum:
//
//   unsorted — the baseline: every received outer row re-descends the inner
//              B-tree from the root in arrival order
//   sorted   — the batch kernel: decode, sort by join-key prefix, one seek
//              per distinct key group through a monotone cursor, replay the
//              match range for the group's remaining rows
//
// The headline metric is counter-based and deterministic: B-tree key
// comparisons charged to the probed (inner) edge tree, divided by the
// number of probes.  Comparisons on the edge tree after load_facts come
// only from probe descents and match checks — load balancing is disabled
// and the edge relation is never a rule target, so its trees see no
// inserts during the run.  Wall-clock and the modelled kLocalJoin
// critical path are reported alongside (best of 3; the counters are
// identical every repetition).
//
// Emits one JSON line per kernel, then the verdict: FAIL unless the
// sorted kernel's comparisons-per-probe is strictly below the unsorted
// baseline and both fixpoints are bit-identical (same path count).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Row {
  const char* kernel = "sorted";
  std::string graph;
  int ranks = 0;
  double wall_s = 0;
  double localjoin_s = 0;  // modelled BSP critical path of kLocalJoin
  std::uint64_t comparisons = 0;  // Σ ranks: probe-side cmps on the edge tree
  std::uint64_t probes = 0;       // Σ ranks×rules: outer rows probed
  std::uint64_t probe_seeks = 0;  // Σ ranks×rules: actual cursor descents/seeks
  std::uint64_t matches = 0;
  std::uint64_t iterations = 0;
  std::uint64_t paths = 0;

  [[nodiscard]] double cmp_per_probe() const {
    return probes == 0 ? 0.0 : static_cast<double>(comparisons) / static_cast<double>(probes);
  }
};

Row run_once(const graph::Graph& g, const std::vector<core::value_t>& sources, int ranks,
             core::ProbeKernel kernel) {
  Row row;
  row.kernel = kernel == core::ProbeKernel::kSorted ? "sorted" : "unsorted";
  row.graph = g.name;
  row.ranks = ranks;

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* spath = program.relation({.name = "spath",
                                    .arity = 3,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_min_aggregator()});
    auto& stratum = program.stratum();
    stratum.loop_rules.push_back(core::JoinRule{
        .a = spath,
        .a_version = core::Version::kDelta,
        .b = edge,
        .b_version = core::Version::kFull,
        .out = {.target = spath,
                .cols = {core::Expr::col_b(1), core::Expr::col_a(1),
                         core::Expr::add(core::Expr::col_a(2), core::Expr::col_b(2))}},
        // Pin the probed side so the edge tree's comparison counter is
        // exactly the probe cost, whatever the dynamic planner would pick.
        .order = core::JoinOrderPolicy::kFixedAOuter,
    });
    edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/true));
    std::vector<core::Tuple> seeds;
    if (comm.rank() == 0) {
      for (core::value_t s : sources) seeds.push_back(core::Tuple{s, s, 0});
    }
    spath->load_facts(seeds);
    // Forget the comparisons spent building the edge tree; from here on
    // the counter sees only probe descents and match checks.
    edge->tree(core::Version::kFull).reset_counters();

    core::EngineConfig cfg;
    cfg.balance.enabled = false;  // keep the edge trees static mid-run
    cfg.probe_kernel = kernel;
    core::Engine engine(comm, cfg);
    const auto run = engine.run(program);
    const auto paths = spath->global_size(core::Version::kFull);
    const auto comparisons = comm.allreduce<std::uint64_t>(
        edge->tree(core::Version::kFull).comparisons(), vmpi::ReduceOp::kSum);
    if (comm.rank() == 0) {
      row.wall_s = run.wall_seconds;
      row.localjoin_s = phase_seconds(run.profile, core::Phase::kLocalJoin);
      row.comparisons = comparisons;
      row.probes = run.kernel.probes;
      row.probe_seeks = run.kernel.probe_seeks;
      row.matches = run.kernel.matches;
      row.iterations = run.total_iterations;
      row.paths = paths;
    }
  });
  return row;
}

void emit(const Row& r) {
  std::printf(
      "{\"kernel\":\"%s\",\"query\":\"sssp\",\"graph\":\"%s\",\"ranks\":%d,"
      "\"wall_s\":%.6f,\"localjoin_s\":%.6f,\"comparisons\":%llu,"
      "\"probes\":%llu,\"probe_seeks\":%llu,\"matches\":%llu,"
      "\"cmp_per_probe\":%.3f,\"iterations\":%llu,\"paths\":%llu}\n",
      r.kernel, r.graph.c_str(), r.ranks, r.wall_s, r.localjoin_s,
      static_cast<unsigned long long>(r.comparisons),
      static_cast<unsigned long long>(r.probes),
      static_cast<unsigned long long>(r.probe_seeks),
      static_cast<unsigned long long>(r.matches), r.cmp_per_probe(),
      static_cast<unsigned long long>(r.iterations),
      static_cast<unsigned long long>(r.paths));
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 12;

  banner("sorted-batch probing: comparisons per probe",
         "single-rule SSSP; arrival-order descents vs sorted batch + monotone cursor",
         "one JSON line per kernel; verdict on the deterministic comparison counter");

  const auto g = graph::make_twitter_like(scale, 10);
  const auto sources = g.pick_hubs(3);

  Row unsorted, sorted;
  for (int rep = 0; rep < 3; ++rep) {  // keep the best of 3 (scheduler noise)
    const auto u = run_once(g, sources, ranks, core::ProbeKernel::kUnsorted);
    const auto s = run_once(g, sources, ranks, core::ProbeKernel::kSorted);
    if (rep == 0 || u.localjoin_s < unsorted.localjoin_s) unsorted = u;
    if (rep == 0 || s.localjoin_s < sorted.localjoin_s) sorted = s;
  }

  if (unsorted.paths != sorted.paths) {
    std::printf("MISMATCH: unsorted %llu paths, sorted %llu\n",
                static_cast<unsigned long long>(unsorted.paths),
                static_cast<unsigned long long>(sorted.paths));
    return 1;
  }
  emit(unsorted);
  emit(sorted);

  const double reduction =
      unsorted.cmp_per_probe() > 0
          ? 100.0 * (1.0 - sorted.cmp_per_probe() / unsorted.cmp_per_probe())
          : 0.0;
  std::printf("\nboth kernels probe the same %llu outer rows; sorting dedups the\n",
              static_cast<unsigned long long>(sorted.probes));
  std::printf("descents (%llu -> %llu seeks) and replays match ranges for free.\n",
              static_cast<unsigned long long>(unsorted.probe_seeks),
              static_cast<unsigned long long>(sorted.probe_seeks));
  if (sorted.cmp_per_probe() >= unsorted.cmp_per_probe()) {
    std::printf("VERDICT: FAIL — sorted %.3f cmp/probe vs unsorted %.3f\n",
                sorted.cmp_per_probe(), unsorted.cmp_per_probe());
    return 1;
  }
  std::printf(
      "VERDICT: PASS — sorted %.3f cmp/probe < unsorted %.3f (%.1f%% fewer; "
      "local join %.4f s vs %.4f s modelled)\n",
      sorted.cmp_per_probe(), unsorted.cmp_per_probe(), reduction,
      sorted.localjoin_s, unsorted.localjoin_s);
  return 0;
}

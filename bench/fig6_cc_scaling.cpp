// Figure 6: strong scaling of CC on the Twitter stand-in.
//
// Paper result: 96% running-time reduction 256 -> 16,384 cores, near-
// perfect to 2,048; at the top end scaling stops because the "Other"
// category — sub-bucket rebalancing's MPI_Alltoallv intra-bucket traffic —
// grows to half the time.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

}  // namespace

int main() {
  bench::banner("Figure 6: CC strong scaling, Twitter stand-in",
                "Twitter on Theta, 256-16,384 cores",
                "twitter-like RMAT (scale 14, ef 12), 2-128 virtual ranks, balancing on, "
                "modelled seconds");

  const auto g = graph::make_twitter_like(14, 12);
  std::printf("graph: %zu directed edges (x2 symmetrized)\n\n", g.num_edges());

  std::printf("%6s %10s %10s %10s %10s %10s | %10s %9s | %9s %8s\n", "ranks", "balance",
              "localjoin", "comm", "dedup", "other+pln", "total", "vs2rk", "balMiB",
              "other%");
  bench::rule(112);

  double base = 0;
  for (const int ranks : {2, 4, 8, 16, 32, 64, 128}) {
    double cells[core::kPhaseCount] = {};
    double total = 0, bal_mib = 0;
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      queries::CcOptions opts;
      opts.tuning.edge_sub_buckets = 8;
      opts.tuning.balance_edges = true;
      const auto r = run_cc(comm, g, opts);
      if (comm.is_root()) {
        for (std::size_t p = 0; p < core::kPhaseCount; ++p) {
          cells[p] = r.run.profile.modelled_seconds[p];
        }
        total = r.run.profile.modelled_total();
        bal_mib = bench::mib(bench::phase_bytes(r.run.profile, core::Phase::kBalance) +
                             bench::phase_bytes(r.run.profile, core::Phase::kIntraBucket));
      }
    });
    if (base == 0) base = total;
    const auto ph = [&](core::Phase p) { return cells[static_cast<std::size_t>(p)]; };
    const double other =
        ph(core::Phase::kOther) + ph(core::Phase::kPlan) + ph(core::Phase::kBalance);
    std::printf("%6d %10.4f %10.4f %10.4f %10.4f %10.4f | %10.4f %8.2fx | %9.2f %7.1f%%\n",
                ranks, ph(core::Phase::kBalance), ph(core::Phase::kLocalJoin),
                ph(core::Phase::kAllToAll), ph(core::Phase::kDedupAgg), other, total,
                base / total, bal_mib, 100.0 * other / total);
  }

  std::printf(
      "\nexpected shape: same scaling profile as Fig. 5, but the balance/intra-bucket\n"
      "('Other') share grows with rank count and caps the top-end speedup — the\n"
      "paper's observation that rebalancing-induced All2allv overhead becomes\n"
      "non-negligible at 16,384 cores.\n");
  return 0;
}

// Figure 7: per-iteration running time for SSSP on the Twitter stand-in.
//
// Paper result (1,024 cores): a long-tail dynamic — the bulk of the time
// is spent in the first few iterations (where the frontier is huge and
// B-tree insertion dominates), followed by a long tail of cheap
// iterations dominated by local join on tiny deltas.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

}  // namespace

int main() {
  bench::banner("Figure 7: per-iteration phase profile, SSSP",
                "Twitter on Theta at 1,024 cores",
                "twitter-like RMAT (scale 14, ef 12), 16 virtual ranks, 30 sources, "
                "critical-path seconds per iteration");

  const auto g = graph::make_twitter_like(14, 12);
  const auto sources = g.pick_hubs(30);

  core::ProfileSummary prof;
  std::size_t iters = 0;
  vmpi::run(16, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    opts.tuning.edge_sub_buckets = 8;
    const auto r = run_sssp(comm, g, opts);
    if (comm.is_root()) {
      prof = r.run.profile;
      iters = r.iterations;
    }
  });

  std::printf("fixpoint iterations: %zu\n\n", iters);
  std::printf("%5s %10s %10s %10s %10s %10s | %10s %7s\n", "iter", "intra", "localjoin",
              "comm", "dedup", "other", "total", "cum%");
  bench::rule(88);

  double grand_total = 0;
  for (const auto& row : prof.per_iteration_max) {
    for (double v : row) grand_total += v;
  }
  double cum = 0;
  for (std::size_t i = 0; i < prof.per_iteration_max.size(); ++i) {
    const auto& row = prof.per_iteration_max[i];
    const auto ph = [&](core::Phase p) { return row[static_cast<std::size_t>(p)]; };
    double total = 0;
    for (double v : row) total += v;
    cum += total;
    std::printf("%5zu %10.5f %10.5f %10.5f %10.5f %10.5f | %10.5f %6.1f%%\n", i,
                ph(core::Phase::kIntraBucket), ph(core::Phase::kLocalJoin),
                ph(core::Phase::kAllToAll), ph(core::Phase::kDedupAgg),
                ph(core::Phase::kOther) + ph(core::Phase::kPlan) +
                    ph(core::Phase::kBalance),
                total, 100.0 * cum / grand_total);
  }

  std::printf(
      "\nexpected shape: the first few iterations carry most of the cumulative time\n"
      "(dedup/B-tree insertion on the large frontier); the tail is long and cheap,\n"
      "dominated by local join over shrinking deltas.\n");
  return 0;
}

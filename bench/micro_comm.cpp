// Microbenchmarks: the virtual MPI substrate's collectives.  These bound
// the per-iteration fixed costs (vote, termination check, exchanges) that
// limit top-end scaling in Figs. 5/6.

#include <benchmark/benchmark.h>

#include "vmpi/runtime.hpp"

namespace {

using namespace paralagg::vmpi;

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int reps = 64;
  for (auto _ : state) {
    run(ranks, [&](Comm& comm) {
      for (int i = 0; i < reps; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * reps);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32);

void BM_AllreduceU64(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int reps = 64;
  for (auto _ : state) {
    run(ranks, [&](Comm& comm) {
      std::uint64_t acc = comm.rank();
      for (int i = 0; i < reps; ++i) {
        acc = comm.allreduce<std::uint64_t>(acc, ReduceOp::kSum);
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(state.iterations() * reps);
}
BENCHMARK(BM_AllreduceU64)->Arg(2)->Arg(8)->Arg(32);

void BM_Alltoallv(benchmark::State& state) {
  const int ranks = 8;
  const auto payload = static_cast<std::size_t>(state.range(0));
  const int reps = 16;
  for (auto _ : state) {
    run(ranks, [&](Comm& comm) {
      std::vector<std::vector<std::uint64_t>> send(static_cast<std::size_t>(ranks));
      for (auto& buf : send) buf.assign(payload / 8, 42);
      for (int i = 0; i < reps; ++i) {
        auto got = comm.alltoallv_t(send);
        benchmark::DoNotOptimize(got);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * reps * static_cast<std::int64_t>(payload) *
                          ranks);
}
BENCHMARK(BM_Alltoallv)->Arg(64)->Arg(4096)->Arg(65536);

void BM_P2PRoundTrip(benchmark::State& state) {
  const int reps = 64;
  for (auto _ : state) {
    run(2, [&](Comm& comm) {
      BufferWriter w;
      w.put<std::uint64_t>(7);
      const auto payload = w.take();
      for (int i = 0; i < reps; ++i) {
        if (comm.rank() == 0) {
          comm.isend(1, i, payload);
          benchmark::DoNotOptimize(comm.recv(1, i));
        } else {
          benchmark::DoNotOptimize(comm.recv(0, i));
          comm.isend(0, i, payload);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * reps);
}
BENCHMARK(BM_P2PRoundTrip);

}  // namespace

// Figure 5: strong scaling of multi-source SSSP on the Twitter stand-in.
//
// Paper result (256 -> 16,384 cores): 96% running-time reduction,
// near-perfect scaling to 2,048 cores, diminishing but positive returns
// beyond (B-tree work scales nearly linearly; tiny per-iteration deltas
// starve ranks at the top end; the planning vote's synchronization grows
// with rank count).  The paper increases problem size by running 30 start
// nodes simultaneously; we do the same.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

}  // namespace

int main() {
  bench::banner("Figure 5: SSSP strong scaling (multi-source), Twitter stand-in",
                "Twitter on Theta, 256-16,384 cores, 30 simultaneous sources",
                "twitter-like RMAT (scale 14, ef 12), 2-128 virtual ranks, 30 sources, "
                "modelled seconds");

  const auto g = graph::make_twitter_like(14, 12);
  const auto sources = g.pick_hubs(30);
  std::printf("graph: %zu edges, %zu sources\n\n", g.num_edges(), sources.size());

  std::printf("%6s %10s %10s %10s %10s %10s | %10s %9s %9s | %10s\n", "ranks", "intra",
              "localjoin", "comm", "dedup", "other+pln", "total", "vs2rk", "ideal",
              "projected");
  bench::rule(116);
  const core::CostModel cluster{};  // 1 GB/s links, 5 us collectives

  double base = 0;
  for (const int ranks : {2, 4, 8, 16, 32, 64, 128}) {
    double cells[core::kPhaseCount] = {};
    double total = 0, projected = 0;
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      queries::SsspOptions opts;
      opts.sources = sources;
      opts.tuning.edge_sub_buckets = 8;
      const auto r = run_sssp(comm, g, opts);
      if (comm.is_root()) {
        for (std::size_t p = 0; p < core::kPhaseCount; ++p) {
          cells[p] = r.run.profile.modelled_seconds[p];
        }
        total = r.run.profile.modelled_total();
        projected = cluster.project(r.run.profile, ranks);
      }
    });
    if (base == 0) base = total;
    const auto ph = [&](core::Phase p) { return cells[static_cast<std::size_t>(p)]; };
    std::printf("%6d %10.4f %10.4f %10.4f %10.4f %10.4f | %10.4f %8.2fx %8.2fx | %10.4f\n",
                ranks, ph(core::Phase::kIntraBucket), ph(core::Phase::kLocalJoin),
                ph(core::Phase::kAllToAll), ph(core::Phase::kDedupAgg),
                ph(core::Phase::kOther) + ph(core::Phase::kPlan) +
                    ph(core::Phase::kBalance),
                total, base / total, static_cast<double>(ranks) / 2.0, projected);
  }

  std::printf(
      "\nexpected shape: near-ideal speedup at the left of the sweep, saturating as\n"
      "per-iteration deltas shrink below the rank count (paper: knee at ~2k of 16k\n"
      "cores; here the same knee appears at a proportional fraction of the sweep).\n");
  return 0;
}

// Table I: single-node comparison of PARALAGG against the RaSQL-style and
// SociaLite-style aggregation strategies, SSSP and CC, across widths.
//
// The paper runs the real RaSQL (Spark) and SociaLite (Java) on a 64-core
// EPYC; neither JVM stack exists here, so the comparators implement those
// systems' *aggregation strategy* (hash-shuffle global maps, §IV-A) on the
// same substrate — which is the variable Table I actually probes.  Widths
// scale 32/64/128 threads down to 2/4/8 virtual ranks.
//
// Paper result: PARALAGG is consistently fastest at full width; the
// comparators gain little or regress as width grows; on the smallest graph
// (topcats) PARALAGG's distribution overhead shows at high width.

#include <chrono>

#include "bench_common.hpp"

namespace {

using namespace paralagg;

struct Row {
  double wall;
  double mibs;
};

Row para_sssp(const graph::Graph& g, const std::vector<core::value_t>& s, int ranks) {
  Row row{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = s;
    const auto r = run_sssp(comm, g, opts);
    if (comm.is_root()) row = {r.run.wall_seconds, bench::mib(r.run.comm_total.total_remote_bytes())};
  });
  return row;
}

Row para_cc(const graph::Graph& g, int ranks) {
  Row row{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    const auto r = run_cc(comm, g, queries::CcOptions{});
    if (comm.is_root()) row = {r.run.wall_seconds, bench::mib(r.run.comm_total.total_remote_bytes())};
  });
  return row;
}

Row shuffle_sssp(const graph::Graph& g, const std::vector<core::value_t>& s, int ranks,
                 baseline::ShuffleMode mode) {
  Row row{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    baseline::ShuffleOptions opts;
    opts.mode = mode;
    const auto r = run_sssp_shuffle(comm, g, s, opts);
    if (comm.is_root()) row = {r.wall_seconds, bench::mib(r.remote_bytes)};
  });
  return row;
}

Row shuffle_cc(const graph::Graph& g, int ranks, baseline::ShuffleMode mode) {
  Row row{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    baseline::ShuffleOptions opts;
    opts.mode = mode;
    const auto r = run_cc_shuffle(comm, g, opts);
    if (comm.is_root()) row = {r.wall_seconds, bench::mib(r.remote_bytes)};
  });
  return row;
}

// Vanilla stratified Datalog (the paper's Table I has N/A rows where
// engines fail on Twitter; materializing plans fail the same way here,
// by blowing a tuple budget).  Returns completed=false -> print N/A.
struct MaybeRow {
  bool ok;
  Row row;
};

MaybeRow stratified_sssp(const graph::Graph& g, const std::vector<core::value_t>& s,
                         int ranks) {
  MaybeRow out{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    baseline::StratifiedOptions opts;
    opts.sources = s;
    opts.tuple_limit = 150'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_sssp_stratified(comm, g, opts);
    if (comm.is_root()) {
      out.ok = r.completed;
      out.row = {std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count(),
                 bench::mib(r.run.comm_total.total_remote_bytes())};
    }
  });
  return out;
}

MaybeRow stratified_cc(const graph::Graph& g, int ranks) {
  MaybeRow out{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    baseline::StratifiedOptions opts;
    opts.tuple_limit = 150'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = run_cc_stratified(comm, g, opts);
    if (comm.is_root()) {
      out.ok = r.completed;
      out.row = {std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count(),
                 bench::mib(r.run.comm_total.total_remote_bytes())};
    }
  });
  return out;
}

void print_maybe_block(const char* graph_name, const char* tool, const MaybeRow rows[3]) {
  std::printf("%-16s %-14s", graph_name, tool);
  for (int i = 0; i < 3; ++i) {
    if (rows[i].ok) {
      std::printf("  %7.3fs %8.2fMiB", rows[i].row.wall, rows[i].row.mibs);
    } else {
      std::printf("  %7s %8s   ", "N/A", "");
    }
  }
  std::printf("\n");
}

void print_block(const char* graph_name, const char* tool, const Row rows[3]) {
  std::printf("%-16s %-14s", graph_name, tool);
  for (int i = 0; i < 3; ++i) std::printf("  %7.3fs %8.2fMiB", rows[i].wall, rows[i].mibs);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner(
      "Table I: single-node SSSP and CC, PARALAGG vs RaSQL-style vs SociaLite-style",
      "64-core EPYC server, 32/64/128 threads, SNAP graphs + Twitter",
      "strategy comparators on the same substrate, 2/4/8 virtual ranks, 5 sources");

  struct G {
    const char* name;
    graph::Graph g;
  };
  std::vector<G> graphs;
  graphs.push_back({"livejournal-like", graph::make_livejournal_like()});
  graphs.push_back({"orkut-like", graph::make_orkut_like()});
  graphs.push_back({"topcats-like", graph::make_topcats_like()});
  graphs.push_back({"twitter-like", graph::make_twitter_like(13, 10)});

  const int widths[3] = {2, 4, 8};

  std::printf("---- Shortest Paths ----\n");
  std::printf("%-16s %-14s  %19s  %19s  %19s\n", "graph", "tool", "2 ranks", "4 ranks",
              "8 ranks");
  bench::rule(96);
  for (const auto& [name, g] : graphs) {
    const auto sources = g.pick_sources(5, 5);
    Row para[3], rasql[3], socialite[3];
    MaybeRow datalog[3];
    for (int i = 0; i < 3; ++i) {
      para[i] = para_sssp(g, sources, widths[i]);
      rasql[i] = shuffle_sssp(g, sources, widths[i], baseline::ShuffleMode::kShuffle);
      socialite[i] = shuffle_sssp(g, sources, widths[i], baseline::ShuffleMode::kMaster);
      datalog[i] = stratified_sssp(g, sources, widths[i]);
    }
    print_block(name, "PARALAGG", para);
    print_block(name, "rasql-style", rasql);
    print_block(name, "socialite-style", socialite);
    print_maybe_block(name, "datalog-strat", datalog);
    std::printf("\n");
  }

  std::printf("---- Connected Components ----\n");
  std::printf("%-16s %-14s  %19s  %19s  %19s\n", "graph", "tool", "2 ranks", "4 ranks",
              "8 ranks");
  bench::rule(96);
  for (const auto& [name, g] : graphs) {
    Row para[3], rasql[3], socialite[3];
    MaybeRow datalog[3];
    for (int i = 0; i < 3; ++i) {
      para[i] = para_cc(g, widths[i]);
      rasql[i] = shuffle_cc(g, widths[i], baseline::ShuffleMode::kShuffle);
      socialite[i] = shuffle_cc(g, widths[i], baseline::ShuffleMode::kMaster);
      datalog[i] = stratified_cc(g, widths[i]);
    }
    print_block(name, "PARALAGG", para);
    print_block(name, "rasql-style", rasql);
    print_block(name, "socialite-style", socialite);
    print_maybe_block(name, "datalog-strat", datalog);
    std::printf("\n");
  }

  std::printf(
      "expected shape: PARALAGG moves the fewest MiB everywhere (fused local\n"
      "aggregation) and its volume grows slowest with width; the rasql-style\n"
      "comparator pays the reducer+storage shuffles, the socialite-style master\n"
      "pays the most and centralizes on rank 0.\n"
      "\n"
      "the vanilla-Datalog 'datalog-strat' rows reproduce the paper's N/A story:\n"
      "materializing plans blow their tuple budget on these graphs (all-lengths\n"
      "path sets on cyclic weighted graphs; the CC node product).\n"
      "\n"
      "reading the wall column: on this 1-core container wall tracks total work,\n"
      "and the comparators here are lean C++ ports of the *strategies* — the\n"
      "JVM/Spark constant factors that dominate the paper's absolute times are\n"
      "deliberately absent.  The paper-relevant, hardware-independent signal is\n"
      "the communication column, where the paper's ordering (PARALAGG first,\n"
      "RaSQL-style second, SociaLite-style last, gap widening with width)\n"
      "reproduces cleanly.\n");
  return 0;
}

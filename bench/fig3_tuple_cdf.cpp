// Figure 3: cumulative density of tuple distribution across ranks for the
// skewed edge relation, with 1 vs 8 sub-buckets.
//
// Paper result (4,096 ranks, Twitter): with one sub-bucket the largest
// rank holds ~10x the tuples of the smallest; eight sub-buckets compress
// the spread to ~2x.
//
// Tuple placement is a pure function of the double-hash layout, so this
// bench evaluates the *actual engine placement function*
// (Relation::owner_rank) at the paper's full 4,096-rank width without
// spawning 4,096 threads — the one experiment here that runs at paper
// scale exactly.

#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace paralagg;

std::vector<std::uint64_t> distribution(const graph::Graph& g, int ranks, int sub_buckets) {
  // A world with no running ranks: we only use the placement arithmetic.
  vmpi::World world(ranks);
  vmpi::Comm comm(world, 0);
  core::Relation edge(comm,
                      {.name = "edge", .arity = 2, .jcc = 1, .sub_buckets = sub_buckets});

  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(ranks), 0);
  core::Tuple t{0, 0};
  for (const auto& e : g.edges) {
    t[0] = e.src;
    t[1] = e.dst;
    ++sizes[static_cast<std::size_t>(edge.owner_rank(t.view()))];
    t[0] = e.dst;  // symmetrized, as the CC query loads it
    t[1] = e.src;
    ++sizes[static_cast<std::size_t>(edge.owner_rank(t.view()))];
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

double print_cdf(const char* label, const std::vector<std::uint64_t>& sorted) {
  std::printf("%-14s", label);
  for (int d = 0; d <= 10; ++d) {
    const std::size_t idx = std::min(sorted.size() - 1, d * sorted.size() / 10);
    std::printf(" %8llu", static_cast<unsigned long long>(sorted[idx]));
  }
  const double ratio = sorted.front() == 0
                           ? static_cast<double>(sorted.back())
                           : static_cast<double>(sorted.back()) /
                                 static_cast<double>(sorted.front());
  std::printf("   max/min %.1fx\n", ratio);
  return ratio;
}

}  // namespace

int main() {
  bench::banner("Figure 3: tuple-distribution CDF across ranks, 1 vs 8 sub-buckets",
                "CC edge relation, Twitter on Theta, 4,096 ranks",
                "twitter-like RMAT (scale 20, ef 8, a=0.55), symmetrized, 4,096 ranks "
                "(placement function evaluated at full paper width)");

  // Skew calibrated so that (hot bucket size) / (mean per-rank load) at
  // 4,096 ranks matches Twitter-2010's: the top account's degree is ~10x
  // the average rank load at the paper's width.
  graph::RmatParams params;
  params.scale = 20;
  params.edge_factor = 8;
  params.a = 0.55;
  params.b = params.c = 0.15;
  params.seed = 42;
  const auto g = graph::make_rmat(params);
  const int ranks = 4096;
  std::printf("graph: %zu directed edges (x2 symmetrized), degree skew %.0fx, %d ranks\n\n",
              g.num_edges(), g.degree_skew(), ranks);

  std::printf("%-14s", "config");
  for (int d = 0; d <= 10; ++d) std::printf("   p%-5d", d * 10);
  std::printf("\n");
  bench::rule(130);

  const auto one = distribution(g, ranks, 1);
  const auto eight = distribution(g, ranks, 8);
  const double r1 = print_cdf("1 sub-bucket", one);
  const double r8 = print_cdf("8 sub-buckets", eight);

  std::printf("\nexpected shape (paper): ~10x spread with one sub-bucket, ~2x with eight.\n");
  std::printf("measured: %.1fx -> %.1fx\n", r1, r8);
  return 0;
}

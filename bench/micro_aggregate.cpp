// Microbenchmarks: the fused deduplication/aggregation pass (paper §IV-A)
// — staging throughput and materialization, aggregated vs plain, plus the
// within-iteration collapse that makes local aggregation pay.

#include <benchmark/benchmark.h>

#include "core/relation.hpp"
#include "vmpi/runtime.hpp"

namespace {

using namespace paralagg;
using core::Relation;
using core::Tuple;
using core::value_t;
using storage::mix64;

void BM_MaterializePlain(benchmark::State& state) {
  const auto n = static_cast<value_t>(state.range(0));
  vmpi::run(1, [&](vmpi::Comm& comm) {
    for (auto _ : state) {
      Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
      for (value_t v = 0; v < n; ++v) r.stage(Tuple{mix64(v), v}.view());
      const auto m = r.materialize();
      benchmark::DoNotOptimize(m.inserted);
    }
  });
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaterializePlain)->Arg(10000)->Arg(100000);

void BM_MaterializeMinAgg(benchmark::State& state) {
  const auto n = static_cast<value_t>(state.range(0));
  vmpi::run(1, [&](vmpi::Comm& comm) {
    for (auto _ : state) {
      Relation r(comm, {.name = "r",
                        .arity = 2,
                        .jcc = 1,
                        .dep_arity = 1,
                        .aggregator = core::make_min_aggregator()});
      for (value_t v = 0; v < n; ++v) r.stage(Tuple{mix64(v), v}.view());
      const auto m = r.materialize();
      benchmark::DoNotOptimize(m.inserted);
    }
  });
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaterializeMinAgg)->Arg(10000)->Arg(100000);

void BM_LocalCollapse(benchmark::State& state) {
  // `fanin` staged tuples per key: the within-iteration duplicates the
  // fused pass collapses before any B-tree work.
  const value_t keys = 1000;
  const auto fanin = static_cast<value_t>(state.range(0));
  vmpi::run(1, [&](vmpi::Comm& comm) {
    for (auto _ : state) {
      Relation r(comm, {.name = "r",
                        .arity = 2,
                        .jcc = 1,
                        .dep_arity = 1,
                        .aggregator = core::make_min_aggregator()});
      for (value_t k = 0; k < keys; ++k) {
        for (value_t i = 0; i < fanin; ++i) {
          r.stage(Tuple{k, mix64(k * fanin + i) % 1000}.view());
        }
      }
      const auto m = r.materialize();
      benchmark::DoNotOptimize(m.inserted);
    }
  });
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(keys * fanin));
}
BENCHMARK(BM_LocalCollapse)->Arg(1)->Arg(8)->Arg(64);

void BM_AscendRejection(benchmark::State& state) {
  // Steady-state fixpoint behaviour: repeated worse values hit the
  // "no new information" fast path (Fig. 1, top right).
  const value_t n = 10000;
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r",
                      .arity = 2,
                      .jcc = 1,
                      .dep_arity = 1,
                      .aggregator = core::make_min_aggregator()});
    for (value_t v = 0; v < n; ++v) r.stage(Tuple{v, 1}.view());
    r.materialize();
    for (auto _ : state) {
      for (value_t v = 0; v < n; ++v) r.stage(Tuple{v, 2}.view());  // all worse
      const auto m = r.materialize();
      benchmark::DoNotOptimize(m.rejected);
    }
  });
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AscendRejection);

}  // namespace

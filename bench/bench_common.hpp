#pragma once

// Shared plumbing for the figure/table benchmark binaries.
//
// Each binary reproduces one table or figure from the paper.  Because this
// container has a single physical core, binaries report three time-like
// quantities (see DESIGN.md §2):
//
//   wall      — end-to-end seconds of the whole SPMD run (all ranks
//               timeshare one core, so wall tracks TOTAL work)
//   modelled  — BSP critical path: Σ over iterations of the max per-rank
//               CPU seconds per phase (tracks what a real cluster pays)
//   MiB       — remote bytes crossing rank boundaries (the paper's subject)
//
// Strong-scaling *shape* lives in the modelled column: more ranks divide
// the per-rank work, so the critical path drops even though wall does not.

#include <cstdio>
#include <string>
#include <vector>

#include "paralagg/paralagg.hpp"

namespace paralagg::bench {

inline double mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double phase_seconds(const core::ProfileSummary& p, core::Phase ph) {
  return p.modelled_seconds[static_cast<std::size_t>(ph)];
}

inline std::uint64_t phase_bytes(const core::ProfileSummary& p, core::Phase ph) {
  return p.total_bytes[static_cast<std::size_t>(ph)];
}

/// Header shared by every binary: which paper artifact this regenerates.
inline void banner(const char* figure, const char* paper_setup, const char* ours) {
  std::printf("== %s ==\n", figure);
  std::printf("paper setup : %s\n", paper_setup);
  std::printf("this run    : %s\n", ours);
  std::printf("\n");
}

inline void rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Sum of the phase-modelled seconds.
inline double modelled_total(const core::ProfileSummary& p) { return p.modelled_total(); }

}  // namespace paralagg::bench

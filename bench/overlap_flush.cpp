// Split-phase router flush: how much tuple-exchange latency does the
// pipelined schedule hide on a multi-rule recursive query?
//
// Three schedules over the same 3-rule SSSP stratum (edges split into three
// relations, one join rule each):
//
//   fused    — one blocking flush per iteration (R+1 rounds, the default)
//   legacy   — one blocking flush per rule (2R rounds)
//   overlap  — one split-phase post per rule (2R rounds), rule k's exchange
//              in flight while rule k+1 joins locally
//
// The thread-CPU phase timers cannot see blocked time, so the metric here
// is the per-phase *wait* account (ProfileSummary::total_wait_seconds):
// seconds ranks spent parked inside blocking communication, attributed to
// kAllToAll for the blocking flushes and kOverlapWait for whatever the
// pipeline failed to hide.  The verdict requires the overlap schedule's
// exposed exchange wait to be strictly below the legacy schedule's — same
// round count, less exposed latency — with bit-identical fixpoints.
//
// Emits one JSON line per (schedule) run, then the verdict.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Row {
  const char* schedule = "fused";
  std::string graph;
  int ranks = 0;
  double wall_s = 0;
  double alltoall_wait_s = 0;  // Σ ranks×iters wait inside blocking flushes
  double overlap_wait_s = 0;   // Σ ranks×iters wait completing posted exchanges
  double remote_mib = 0;
  std::uint64_t exchange_rounds = 0;
  std::uint64_t tickets = 0;
  std::uint64_t iterations = 0;
  std::uint64_t paths = 0;

  [[nodiscard]] double exposed_s() const { return alltoall_wait_s + overlap_wait_s; }
};

core::EngineConfig config_for(const char* schedule) {
  core::EngineConfig cfg;
  cfg.balance.enabled = false;  // keep the exchange schedule the only variable
  if (std::string(schedule) == "legacy") {
    cfg.fuse_exchanges = false;
    cfg.router_preagg = false;
  } else if (std::string(schedule) == "overlap") {
    cfg.overlap_flush = true;
  }
  return cfg;
}

Row run_once(const graph::Graph& g, const std::vector<core::value_t>& sources, int ranks,
             const char* schedule) {
  Row row;
  row.schedule = schedule;
  row.graph = g.name;
  row.ranks = ranks;

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    // Split the edges across three relations: a 3-rule recursive stratum,
    // so per-rule schedules have rules to pipeline between.
    std::array<core::Relation*, 3> edges{};
    for (int k = 0; k < 3; ++k) {
      edges[static_cast<std::size_t>(k)] = program.relation(
          {.name = "edge" + std::to_string(k), .arity = 3, .jcc = 1});
    }
    auto* spath = program.relation({.name = "spath",
                                    .arity = 3,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_min_aggregator()});
    auto& stratum = program.stratum();
    for (auto* e : edges) {
      stratum.loop_rules.push_back(core::JoinRule{
          .a = spath,
          .a_version = core::Version::kDelta,
          .b = e,
          .b_version = core::Version::kFull,
          .out = {.target = spath,
                  .cols = {core::Expr::col_b(1), core::Expr::col_a(1),
                           core::Expr::add(core::Expr::col_a(2), core::Expr::col_b(2))}},
      });
    }
    const auto mine = queries::edge_slice(comm, g, /*weighted=*/true);
    std::array<std::vector<core::Tuple>, 3> split;
    for (std::size_t i = 0; i < mine.size(); ++i) split[i % 3].push_back(mine[i]);
    for (int k = 0; k < 3; ++k) {
      edges[static_cast<std::size_t>(k)]->load_facts(split[static_cast<std::size_t>(k)]);
    }
    std::vector<core::Tuple> seeds;
    if (comm.rank() == 0) {
      for (core::value_t s : sources) seeds.push_back(core::Tuple{s, s, 0});
    }
    spath->load_facts(seeds);

    core::Engine engine(comm, config_for(schedule));
    const auto run = engine.run(program);
    const auto paths = spath->global_size(core::Version::kFull);
    if (comm.rank() == 0) {
      row.wall_s = run.wall_seconds;
      row.iterations = run.total_iterations;
      row.remote_mib = mib(run.comm_total.total_remote_bytes());
      row.exchange_rounds = run.comm_total.exchange_rounds() /
                            static_cast<std::uint64_t>(comm.size());
      row.tickets = run.comm_total.tickets_posted;
      row.paths = paths;
      const auto& waits = run.profile.total_wait_seconds;
      row.alltoall_wait_s = waits[static_cast<std::size_t>(core::Phase::kAllToAll)];
      row.overlap_wait_s = waits[static_cast<std::size_t>(core::Phase::kOverlapWait)];
    }
  });
  return row;
}

void emit(const Row& r) {
  std::printf(
      "{\"schedule\":\"%s\",\"query\":\"sssp3\",\"graph\":\"%s\",\"ranks\":%d,"
      "\"wall_s\":%.6f,\"alltoall_wait_s\":%.6f,\"overlap_wait_s\":%.6f,"
      "\"exposed_s\":%.6f,\"remote_mib\":%.3f,\"exchange_rounds\":%llu,"
      "\"tickets\":%llu,\"iterations\":%llu,\"paths\":%llu}\n",
      r.schedule, r.graph.c_str(), r.ranks, r.wall_s, r.alltoall_wait_s, r.overlap_wait_s,
      r.exposed_s(), r.remote_mib, static_cast<unsigned long long>(r.exchange_rounds),
      static_cast<unsigned long long>(r.tickets),
      static_cast<unsigned long long>(r.iterations),
      static_cast<unsigned long long>(r.paths));
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 12;

  banner("split-phase flush: exposed exchange latency",
         "3-rule SSSP, blocking per-rule exchanges vs split-phase pipelined posts",
         "one JSON line per schedule; exposed = alltoall_wait + overlap_wait");

  const auto g = graph::make_twitter_like(scale, 10);
  const auto sources = g.pick_hubs(3);

  Row fused, legacy, overlap;
  for (int rep = 0; rep < 3; ++rep) {  // keep the best of 3 (scheduler noise)
    const auto f = run_once(g, sources, ranks, "fused");
    const auto l = run_once(g, sources, ranks, "legacy");
    const auto o = run_once(g, sources, ranks, "overlap");
    if (rep == 0 || f.exposed_s() < fused.exposed_s()) fused = f;
    if (rep == 0 || l.exposed_s() < legacy.exposed_s()) legacy = l;
    if (rep == 0 || o.exposed_s() < overlap.exposed_s()) overlap = o;
  }

  if (fused.paths != legacy.paths || fused.paths != overlap.paths) {
    std::printf("MISMATCH: fused %llu paths, legacy %llu, overlap %llu\n",
                static_cast<unsigned long long>(fused.paths),
                static_cast<unsigned long long>(legacy.paths),
                static_cast<unsigned long long>(overlap.paths));
    return 1;
  }
  emit(fused);
  emit(legacy);
  emit(overlap);

  std::printf("\nlegacy and overlap pay the same 2R rounds per iteration; the split\n");
  std::printf("phase hides the flush latency behind the next rule's local join.\n");
  if (overlap.exposed_s() >= legacy.exposed_s()) {
    std::printf("VERDICT: FAIL — overlap exposed %.6f s vs legacy %.6f s\n",
                overlap.exposed_s(), legacy.exposed_s());
    return 1;
  }
  std::printf("VERDICT: PASS — overlap exposed %.6f s < legacy %.6f s (fused %.6f s)\n",
              overlap.exposed_s(), legacy.exposed_s(), fused.exposed_s());
  return 0;
}

// Microbenchmarks: B-tree storage (the per-rank partition structure whose
// insertion cost dominates PARALAGG at low core counts, per the paper's
// Fig. 5 analysis).

#include <benchmark/benchmark.h>

#include "storage/btree.hpp"

namespace {

using paralagg::storage::mix64;
using paralagg::storage::Tuple;
using paralagg::storage::TupleBTree;
using paralagg::storage::value_t;

void BM_InsertSequential(benchmark::State& state) {
  const auto n = static_cast<value_t>(state.range(0));
  for (auto _ : state) {
    TupleBTree t(2, 2);
    for (value_t v = 0; v < n; ++v) t.insert(Tuple{v, v});
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InsertSequential)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_InsertRandom(benchmark::State& state) {
  const auto n = static_cast<value_t>(state.range(0));
  for (auto _ : state) {
    TupleBTree t(2, 2);
    for (value_t v = 0; v < n; ++v) t.insert(Tuple{mix64(v), v});
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InsertRandom)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FindKey(benchmark::State& state) {
  const auto n = static_cast<value_t>(state.range(0));
  TupleBTree t(2, 1);
  for (value_t v = 0; v < n; ++v) t.insert(Tuple{mix64(v), v});
  value_t probe = 0;
  for (auto _ : state) {
    const value_t key[] = {mix64(probe++ % n)};
    benchmark::DoNotOptimize(t.find_key(std::span<const value_t>(key, 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindKey)->Arg(10000)->Arg(100000);

void BM_PrefixScan(benchmark::State& state) {
  // 1000 groups of `range` rows each: the access pattern of a local join.
  const auto group_size = static_cast<value_t>(state.range(0));
  TupleBTree t(2, 2);
  for (value_t g = 0; g < 1000; ++g) {
    for (value_t i = 0; i < group_size; ++i) t.insert(Tuple{g, i});
  }
  value_t probe = 0;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    const value_t prefix[] = {probe++ % 1000};
    t.scan_prefix(std::span<const value_t>(prefix, 1),
                  [&](std::span<const value_t> row) { sum += row[1]; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(group_size));
}
BENCHMARK(BM_PrefixScan)->Arg(4)->Arg(32)->Arg(256);

void BM_CursorSortedProbes(benchmark::State& state) {
  // The sorted-batch join access pattern: one monotone cursor driven
  // through ascending join-key prefixes.  Compare against BM_PrefixScan
  // (fresh descent per probe) at the same group size.
  const auto group_size = static_cast<value_t>(state.range(0));
  TupleBTree t(2, 2);
  for (value_t g = 0; g < 1000; ++g) {
    for (value_t i = 0; i < group_size; ++i) t.insert(Tuple{g, i});
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    auto c = t.cursor();
    for (value_t g = 0; g < 1000; ++g) {
      const value_t prefix[] = {g};
      const auto pre = std::span<const value_t>(prefix, 1);
      for (c.seek(pre); c.valid() && c.matches(pre); c.next()) sum += c.row()[1];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(1000 * group_size));
}
BENCHMARK(BM_CursorSortedProbes)->Arg(4)->Arg(32)->Arg(256);

void BM_PayloadUpdateInPlace(benchmark::State& state) {
  // The fused-aggregation hot path: find key, rewrite the payload column.
  const value_t n = 100000;
  TupleBTree t(2, 1);
  for (value_t v = 0; v < n; ++v) t.insert(Tuple{mix64(v), v});
  value_t probe = 0;
  for (auto _ : state) {
    const value_t key[] = {mix64(probe++ % n)};
    const std::span<value_t> row = t.find_key(std::span<const value_t>(key, 1));
    row[1] = probe;
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PayloadUpdateInPlace);

}  // namespace

// Figure 4: local-join computation time for the CC query with one vs
// eight sub-buckets, across rank counts.
//
// Paper result: with one sub-bucket the query stops scaling (the hottest
// rank bottlenecks the join) around 2k processes and then regresses; with
// eight sub-buckets local join keeps improving to 16,384 processes.  At
// low rank counts the balanced version is *slower* — the price of the
// extra intra-bucket replication (§IV-C).

#include "bench_common.hpp"

namespace {

using namespace paralagg;

struct Cell {
  double local_join;
  double total;
  double intra_mib;
};

Cell run_one(const graph::Graph& g, int ranks, int sub_buckets) {
  Cell cell{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::CcOptions opts;
    opts.tuning.edge_sub_buckets = sub_buckets;
    opts.tuning.balance_edges = false;  // isolate the static fan-out effect
    const auto result = run_cc(comm, g, opts);
    if (comm.is_root()) {
      cell.local_join = bench::phase_seconds(result.run.profile, core::Phase::kLocalJoin);
      cell.total = result.run.profile.modelled_total();
      cell.intra_mib =
          bench::mib(bench::phase_bytes(result.run.profile, core::Phase::kIntraBucket));
    }
  });
  return cell;
}

}  // namespace

int main() {
  bench::banner("Figure 4: CC local-join time, 1 vs 8 sub-buckets",
                "Twitter on Theta, 256-16,384 processes",
                "celebrity-augmented RMAT (scale 14, ef 8 + 120k-degree celebrity), 4-96 ranks");

  const auto g = graph::make_celebrity_like(14, 8, 120'000);
  std::printf("graph: %zu edges, skew %.1fx\n\n", g.num_edges(), g.degree_skew());

  std::printf("%6s | %12s %12s %10s | %12s %12s %10s | %8s\n", "ranks", "lj(1sub)",
              "total(1sub)", "intraMiB", "lj(8sub)", "total(8sub)", "intraMiB",
              "lj 1/8");
  bench::rule(104);

  double prev_lj1 = 0;
  for (const int ranks : {4, 8, 16, 32, 64, 96}) {
    const auto one = run_one(g, ranks, 1);
    const auto eight = run_one(g, ranks, 8);
    std::printf("%6d | %12.4f %12.4f %10.2f | %12.4f %12.4f %10.2f | %8.2f\n", ranks,
                one.local_join, one.total, one.intra_mib, eight.local_join, eight.total,
                eight.intra_mib, one.local_join / eight.local_join);
    prev_lj1 = one.local_join;
  }
  (void)prev_lj1;

  std::printf("\nexpected shape (matches paper Fig. 4): below the crossover the balanced run\n"
              "is SLOWER (it pays 8x intra-bucket replication), mirroring the paper's\n"
              "<1,024-process regime; at the top of the sweep the 1-sub-bucket local join\n"
              "flattens (the celebrity bucket does not shrink with more ranks) while the\n"
              "8-sub-bucket join keeps dropping -- the paper's 4,096-16,384 regime.\n");
  return 0;
}

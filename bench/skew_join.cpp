// Heavy-hitter join routing: what the hybrid plan buys on a super-hub
// graph, and that it buys it without touching the fixpoint.
//
// Hash partitioning concentrates a hot join key's work on one rank: the
// paper's sub-bucket balancer can spread the hot relation's *storage*, but
// then replicates every probe row to all sub-buckets — and relations it
// may not touch (PageRank's edeg) never spread at all.  The hybrid plan
// (core/skew.hpp) moves only the hot keys' rows across all ranks and
// broadcasts only the hot keys' probe rows, leaving the tail on the
// uniform path.
//
// Chart: SSSP and PageRank on a scale-S RMAT graph, with and without a
// planted super-hub owning 40% of all edges, uniform vs hybrid per graph:
//
//   work(max)  — max-over-ranks probes+matches (RunResult::kernel_max),
//                the straggler rank's local-join load, the number the
//                hybrid plan exists to shrink
//   work(sum)  — summed probes+matches (total compute; the hybrid plan
//                must not inflate it much)
//   hot-iters  — iterations that ran with a non-empty hot set
//   respread   — rows moved by hot-set adoption switches
//
// --verdict gates (exit 0/1):
//   (a) hybrid fixpoints are bit-identical to uniform on both graphs and
//       both queries,
//   (b) on the hub graph, hybrid cuts max-over-ranks probes+matches by
//       >= 30% for SSSP and PageRank, with a non-empty hot set seen,
//   (c) on the plain RMAT graph every per-key count sits below the
//       threshold, so the hybrid legs must show zero hot iterations and
//       zero respread rows — no plan flip on uniform workloads.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

// Threshold sits between the base graph's max per-key row count (~151 for the
// weighted arity-3 edge at these parameters) and the planted hub's count in
// its *most deduplicated* form: PageRank loads edges unweighted, so the hub's
// 8192 planted draws collapse to ~2817 distinct (hub, dst) rows.  The mild
// RMAT mix (a = 0.45) keeps the tail flat so the planted hub is the one heavy
// hitter rather than one of many.
constexpr std::uint64_t kHotThreshold = 1024;
constexpr std::size_t kMaxHotKeys = 8;

struct Leg {
  std::string name;
  std::uint64_t work_max = 0;  // max-over-ranks probes + matches
  std::uint64_t work_sum = 0;  // summed probes + matches
  core::SkewStats skew;
  bool aborted = false;
  std::vector<core::Tuple> rows;  // fixpoint, gathered to rank 0, sorted
};

queries::QueryTuning tuning_for(bool hybrid) {
  queries::QueryTuning t;
  if (hybrid) {
    t.engine.skew.enabled = true;
    t.engine.skew.hot_threshold = kHotThreshold;
    t.engine.skew.max_hot_keys = kMaxHotKeys;
  }
  return t;
}

void absorb(Leg& leg, const core::RunResult& run) {
  leg.work_max = run.kernel_max.probes + run.kernel_max.matches;
  leg.work_sum = run.kernel.probes + run.kernel.matches;
  leg.skew = run.skew;
  leg.aborted = run.aborted_fault;
}

Leg run_sssp_leg(const graph::Graph& g, int ranks, bool hybrid) {
  Leg leg;
  leg.name = std::string("sssp/") + (hybrid ? "hybrid" : "uniform");
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = g.pick_hubs(1);
    opts.tuning = tuning_for(hybrid);
    opts.collect_distances = true;
    const auto r = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      leg.rows = r.distances;
      absorb(leg, r.run);
    }
  });
  return leg;
}

Leg run_pagerank_leg(const graph::Graph& g, int ranks, bool hybrid) {
  Leg leg;
  leg.name = std::string("pagerank/") + (hybrid ? "hybrid" : "uniform");
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = 20;
    opts.tuning = tuning_for(hybrid);
    opts.collect_ranks = true;
    const auto r = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) {
      leg.rows = r.ranks;
      absorb(leg, r.run);
    }
  });
  return leg;
}

void emit(const Leg& l, const char* outcome) {
  std::printf("%-18s  %12llu  %12llu  %9llu  %9llu  %s\n", l.name.c_str(),
              static_cast<unsigned long long>(l.work_max),
              static_cast<unsigned long long>(l.work_sum),
              static_cast<unsigned long long>(l.skew.hot_iterations),
              static_cast<unsigned long long>(l.skew.respread_rows), outcome);
}

double reduction(const Leg& uniform, const Leg& hybrid) {
  if (uniform.work_max == 0) return 0;
  return 1.0 - static_cast<double>(hybrid.work_max) /
                   static_cast<double>(uniform.work_max);
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  bool verdict = false;
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verdict") == 0) {
      verdict = true;
    } else {
      positional.push_back(std::atoi(argv[i]));
    }
  }
  const int ranks = positional.size() > 0 ? positional[0] : 8;
  const int scale = positional.size() > 1 ? positional[1] : 12;

  banner("skew-optimal heavy-hitter joins: hybrid plan vs uniform hash partitioning",
         "n/a (heavy-hitter routing is this repo's extension; Ketsman-Suciu-Tao / "
         "Beame-Koutris-Suciu style)",
         "SSSP + PageRank on RMAT with a planted 40% super-hub; max-over-ranks join "
         "work must drop >= 30% with bit-identical fixpoints");

  const auto base = graph::make_rmat(
      {.scale = scale, .edge_factor = 8, .a = 0.45, .b = 0.1833, .c = 0.1833, .seed = 7});
  auto hubbed = base;
  graph::plant_hub(hubbed, /*fraction=*/0.40, /*hub=*/0, /*seed=*/9);
  std::printf("graphs: %s and %s (%llu nodes, %zu edges), %d ranks, hot threshold %llu\n\n",
              base.name.c_str(), hubbed.name.c_str(),
              static_cast<unsigned long long>(base.num_nodes), base.num_edges(), ranks,
              static_cast<unsigned long long>(kHotThreshold));

  std::printf("%-18s  %12s  %12s  %9s  %9s  %s\n", "leg", "work(max)", "work(sum)",
              "hot-iters", "respread", "outcome");

  bool pass = true;

  // ---- super-hub graph: the hybrid plan must pay off ------------------------
  std::printf("-- %s --\n", hubbed.name.c_str());
  for (int query = 0; query < 2; ++query) {
    const Leg uniform = query == 0 ? run_sssp_leg(hubbed, ranks, false)
                                   : run_pagerank_leg(hubbed, ranks, false);
    const Leg hybrid = query == 0 ? run_sssp_leg(hubbed, ranks, true)
                                  : run_pagerank_leg(hubbed, ranks, true);
    const bool exact = !uniform.aborted && !hybrid.aborted && !uniform.rows.empty() &&
                       hybrid.rows == uniform.rows;
    const double red = reduction(uniform, hybrid);
    const bool engaged = hybrid.skew.hot_iterations > 0;
    const bool ok = exact && engaged && red >= 0.30;
    pass = pass && ok;
    emit(uniform, "baseline");
    char line[64];
    std::snprintf(line, sizeof line, "%.1f%% less max-work%s%s", red * 100,
                  exact ? "" : ", WRONG FIXPOINT", engaged ? "" : ", NEVER ENGAGED");
    emit(hybrid, line);
  }

  // ---- plain RMAT: every key is below threshold, the plan must not flip -----
  std::printf("-- %s --\n", base.name.c_str());
  for (int query = 0; query < 2; ++query) {
    const Leg uniform = query == 0 ? run_sssp_leg(base, ranks, false)
                                   : run_pagerank_leg(base, ranks, false);
    const Leg hybrid = query == 0 ? run_sssp_leg(base, ranks, true)
                                  : run_pagerank_leg(base, ranks, true);
    const bool exact = !uniform.aborted && !hybrid.aborted && !uniform.rows.empty() &&
                       hybrid.rows == uniform.rows;
    const bool quiet = hybrid.skew.hot_iterations == 0 && hybrid.skew.respread_rows == 0;
    pass = pass && exact && quiet;
    emit(uniform, "baseline");
    emit(hybrid, exact ? (quiet ? "no plan flip" : "SPURIOUS PLAN FLIP")
                       : "WRONG FIXPOINT");
  }
  rule(84);

  if (verdict) {
    std::printf("verdict: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
  return 0;
}

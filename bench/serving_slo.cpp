// Serving SLO: what the resident incremental engine buys over re-running
// the batch engine on every change.
//
// Streams small update batches (two edge inserts + one delete each) into a
// warm RMAT SSSP fixpoint and measures, per batch, the incremental apply
// latency and derived-tuple work against a from-scratch evaluation of the
// same mutated graph; then measures sustained point-lookup throughput on
// the warm service.  Reports:
//
//   p99 latency — 99th-percentile apply_updates wall vs mean fresh wall
//   tuples      — derived-tuple work, incremental vs recompute
//   lookups/s   — batched point lookups served between batches
//
// Verdict (always enforced; --verdict trims the per-batch table for CI):
// the final incremental fixpoint must be bit-identical to the fresh run on
// the final graph, and the summed incremental tuple work must be STRICTLY
// cheaper than recompute — otherwise the subsystem has no reason to exist
// and the binary exits nonzero.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

using core::Tuple;
using core::value_t;
using Clock = std::chrono::steady_clock;

template <typename T>
void do_not_optimize(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Mutation {
  bool insert = true;
  Tuple row;
};

serving::UpdateBatch shard_batch(const vmpi::Comm& comm, std::span<const Mutation> muts) {
  serving::RelationDelta d;
  d.relation = "edge";
  const auto n = static_cast<std::size_t>(comm.size());
  for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < muts.size(); i += n) {
    (muts[i].insert ? d.inserts : d.deletes).push_back(muts[i].row);
  }
  serving::UpdateBatch b;
  b.push_back(std::move(d));
  return b;
}

void apply_to_graph(graph::Graph& g, std::span<const Mutation> muts) {
  for (const auto& m : muts) {
    const graph::Edge e{m.row[0], m.row[1], m.row[2]};
    if (m.insert) {
      g.edges.push_back(e);
    } else {
      std::erase(g.edges, e);
    }
  }
}

double p99(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = (99 * v.size() + 99) / 100;  // ceil(0.99 n)
  return v[std::min(idx, v.size()) - 1];
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  bool verdict_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verdict") == 0) verdict_only = true;
  }

  const int ranks = 4;
  const int nbatches = 32;
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 4, .seed = 21});
  const auto nodes = g.num_nodes;

  // Deterministic small batches: two inserts and one delete of an original
  // edge each — the streaming regime the serving SLO is about.
  std::vector<std::vector<Mutation>> batches(nbatches);
  for (int i = 0; i < nbatches; ++i) {
    const auto k = static_cast<value_t>(i);
    auto& b = batches[static_cast<std::size_t>(i)];
    b.push_back({true, Tuple{(3 * k + 1) % nodes, (5 * k + 7) % nodes, 1 + (k % 9)}});
    b.push_back({true, Tuple{(7 * k + 2) % nodes, (11 * k + 3) % nodes, 1 + (k % 5)}});
    const auto& e = g.edges[static_cast<std::size_t>(13 * i) % g.edges.size()];
    b.push_back({false, Tuple{e.src, e.dst, e.weight}});
  }

  banner("serving SLO — incremental maintenance vs full re-evaluation",
         "resident service absorbing a stream of small graph updates",
         (g.name + ", SSSP from 0, " + std::to_string(ranks) + " ranks, " +
          std::to_string(nbatches) + " batches of 2 ins + 1 del")
             .c_str());

  // ---- incremental leg: one warm service absorbs the whole stream --------
  std::vector<double> inc_ms(nbatches, 0);
  std::vector<std::uint64_t> inc_tuples(nbatches, 0);
  std::vector<Tuple> inc_rows;
  double lookup_sec = 0;
  std::uint64_t lookups_done = 0;
  bool aborted = false;
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, {});
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    srv.start();
    for (int i = 0; i < nbatches; ++i) {
      const auto batch = shard_batch(comm, batches[static_cast<std::size_t>(i)]);
      const auto t0 = Clock::now();
      const auto res = srv.apply_updates(batch);
      if (comm.rank() == 0) {
        inc_ms[static_cast<std::size_t>(i)] = ms_since(t0);
        inc_tuples[static_cast<std::size_t>(i)] = res.tuples_derived;
        if (res.aborted_fault) aborted = true;
      }
    }
    // Sustained lookups on the warm service: every node, batched through
    // the monotone-cursor read path, repeatedly.
    std::vector<Tuple> keys;
    keys.reserve(nodes);
    for (value_t v = 0; v < nodes; ++v) keys.push_back(Tuple{v});
    const int rounds = 20;
    const auto t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
      auto rows = srv.lookup_batch("spath", keys);
      do_not_optimize(rows.size());
    }
    if (comm.rank() == 0) {
      lookup_sec = ms_since(t0) / 1e3;
      lookups_done = static_cast<std::uint64_t>(rounds) * nodes;
    }
    auto rows = srv.lookup("spath", {});
    if (comm.rank() == 0) inc_rows = std::move(rows);
  });

  // ---- recompute leg: a fresh batch run per mutated graph ----------------
  std::vector<double> fresh_ms(nbatches, 0);
  std::vector<std::uint64_t> fresh_tuples(nbatches, 0);
  std::vector<Tuple> fresh_rows;
  graph::Graph cur = g;
  for (int i = 0; i < nbatches; ++i) {
    apply_to_graph(cur, batches[static_cast<std::size_t>(i)]);
    const bool last = i == nbatches - 1;
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      queries::SsspOptions opts;
      opts.sources = {0};
      opts.collect_distances = last;
      const auto t0 = Clock::now();
      auto r = queries::run_sssp(comm, cur, opts);
      const auto ms = ms_since(t0);
      std::uint64_t local = 0;
      for (const auto& s : r.run.strata) local += s.tuples_generated;
      vmpi::StatsPause pause(comm);
      const auto total = comm.allreduce<std::uint64_t>(local, vmpi::ReduceOp::kSum);
      if (comm.rank() == 0) {
        fresh_ms[static_cast<std::size_t>(i)] = ms;
        fresh_tuples[static_cast<std::size_t>(i)] = total;
        if (last) fresh_rows = std::move(r.distances);
      }
    });
  }

  if (!verdict_only) {
    std::printf("%6s %12s %12s %12s %12s\n", "batch", "inc_ms", "inc_tuples", "fresh_ms",
                "fresh_tuples");
    rule(60);
    for (int i = 0; i < nbatches; ++i) {
      const auto s = static_cast<std::size_t>(i);
      std::printf("%6d %12.2f %12llu %12.2f %12llu\n", i, inc_ms[s],
                  static_cast<unsigned long long>(inc_tuples[s]), fresh_ms[s],
                  static_cast<unsigned long long>(fresh_tuples[s]));
    }
    rule(60);
  }

  std::uint64_t inc_total = 0, fresh_total = 0;
  double fresh_mean = 0;
  for (int i = 0; i < nbatches; ++i) {
    const auto s = static_cast<std::size_t>(i);
    inc_total += inc_tuples[s];
    fresh_total += fresh_tuples[s];
    fresh_mean += fresh_ms[s];
  }
  fresh_mean /= nbatches;

  std::printf("p99 apply latency   : %8.2f ms   (fresh mean %8.2f ms)\n", p99(inc_ms),
              fresh_mean);
  std::printf("derived tuple work  : %8llu      (recompute %8llu)\n",
              static_cast<unsigned long long>(inc_total),
              static_cast<unsigned long long>(fresh_total));
  std::printf("lookup throughput   : %8.0f lookups/s (%llu served)\n",
              static_cast<double>(lookups_done) / lookup_sec,
              static_cast<unsigned long long>(lookups_done));

  bool ok = true;
  if (aborted) {
    std::printf("VERDICT FAIL: a batch aborted on the fault path\n");
    ok = false;
  }
  if (inc_rows != fresh_rows) {
    std::printf("VERDICT FAIL: incremental fixpoint != from-scratch (%zu vs %zu rows)\n",
                inc_rows.size(), fresh_rows.size());
    ok = false;
  }
  if (inc_total >= fresh_total) {
    std::printf("VERDICT FAIL: incremental work (%llu tuples) is not strictly cheaper "
                "than recompute (%llu)\n",
                static_cast<unsigned long long>(inc_total),
                static_cast<unsigned long long>(fresh_total));
    ok = false;
  }
  if (ok) {
    std::printf("VERDICT PASS: bit-identical fixpoint, %.1fx less tuple work\n",
                static_cast<double>(fresh_total) / static_cast<double>(inc_total));
  }
  return ok ? 0 : 1;
}

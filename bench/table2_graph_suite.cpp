// Table II: SSSP and CC across the eight SuiteSparse stand-ins at two
// process counts (paper: 256 and 512 on Theta's debug queue; here 8 and
// 16 virtual ranks).
//
// Columns mirror the paper: edges, SSSP iterations, reachable paths, SSSP
// time at both widths, component count, CC time at both widths.  Times are
// modelled parallel seconds; the paper's observation to reproduce is
// near-2x improvement from the narrow to the wide configuration, clearer
// on the larger graphs.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

struct SsspCell {
  std::uint64_t iters;
  std::uint64_t paths;
  double modelled;
};

struct CcCell {
  std::uint64_t comps;
  double modelled;
};

SsspCell sssp_at(const graph::Graph& g, const std::vector<core::value_t>& s, int ranks) {
  SsspCell cell{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = s;
    opts.tuning.edge_sub_buckets = 8;
    const auto r = run_sssp(comm, g, opts);
    if (comm.is_root()) {
      cell = {r.iterations, r.path_count, r.run.profile.modelled_total()};
    }
  });
  return cell;
}

CcCell cc_at(const graph::Graph& g, int ranks) {
  CcCell cell{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::CcOptions opts;
    opts.tuning.edge_sub_buckets = 8;
    const auto r = run_cc(comm, g, opts);
    if (comm.is_root()) cell = {r.component_count, r.run.profile.modelled_total()};
  });
  return cell;
}

std::string human(std::uint64_t n) {
  char buf[32];
  if (n >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace

int main() {
  bench::banner("Table II: SSSP and CC across the SuiteSparse suite at two widths",
                "8 SuiteSparse graphs (9.8M-640M edges), 256 vs 512 processes on Theta",
                "8 container-scale stand-ins (see graph/zoo.*), 8 vs 16 virtual ranks, "
                "5 sources, modelled seconds");

  std::printf("%-16s %8s | %6s %8s %9s %9s %6s | %8s %9s %9s %6s\n", "graph", "edges",
              "iters", "paths", "sssp@8", "sssp@16", "spd", "comp", "cc@8", "cc@16", "spd");
  bench::rule(116);

  for (const auto& entry : graph::table2_zoo()) {
    const auto g = entry.make();
    const auto sources = g.pick_sources(5, 3);

    const auto s8 = sssp_at(g, sources, 8);
    const auto s16 = sssp_at(g, sources, 16);
    const auto c8 = cc_at(g, 8);
    const auto c16 = cc_at(g, 16);

    std::printf("%-16s %8s | %6llu %8s %9.4f %9.4f %5.2fx | %8s %9.4f %9.4f %5.2fx\n",
                entry.name.c_str(), human(g.num_edges()).c_str(),
                static_cast<unsigned long long>(s8.iters), human(s8.paths).c_str(),
                s8.modelled, s16.modelled, s8.modelled / s16.modelled,
                human(c8.comps).c_str(), c8.modelled, c16.modelled,
                c8.modelled / c16.modelled);
  }

  std::printf(
      "\nstand-in provenance (paper graph -> rationale):\n");
  for (const auto& entry : graph::table2_zoo()) {
    std::printf("  %-16s -> %-10s (%s; paper |E| = %s)\n", entry.name.c_str(),
                entry.paper_graph.c_str(), entry.character.c_str(),
                human(entry.paper_edges).c_str());
  }
  std::printf(
      "\nexpected shape: near-2x modelled speedup from 8 to 16 ranks on the larger\n"
      "graphs, weaker on the small/skewed ones; mesh stand-ins (freescale, ml-geer,\n"
      "stokes) show the paper's high iteration counts, hv15r-like the low one.\n");
  return 0;
}

// Staleness sweep: what the stale-synchronous protocol buys and what it
// never gives up.
//
// Runs PageRank on a skewed RMAT graph at staleness windows s ∈ {0, 1, 2,
// 4, 8} against the BSP engine, charting per leg:
//
//   rounds   — epochs folded (identical on every leg by construction: the
//              staleness window is flow control, not semantics)
//   wall_s   — end-to-end seconds (best of 3)
//   wait_s   — exposed wait: max-over-ranks CommStats::wait_seconds, the
//              time some rank sat parked (barrier/allreduce for BSP, recv
//              starvation for SSP); best of 3.  This is the number the
//              epoch pipeline exists to shrink — s >= 1 lets a fast rank
//              scan ahead instead of waiting for the slowest peer's round
//   outcome  — "exact" iff bit-identical to the BSP oracle
//
// The exposed-wait comparison runs under a deterministic straggler (one
// rank stalled for a fixed slice mid-run, FaultPlan::stall_*): on a clean
// single-core substrate both engines' waits are scheduling noise, but a
// straggler is exactly the condition stale synchrony exists for — BSP
// peers park at the next collective for the whole stall, SSP peers spend
// the stall scanning up to s epochs ahead, so their exposed wait drops by
// the work the window let them overlap.
//
// --verdict turns the chart into a gate (exit 0/1):
//   (a) every staleness setting reaches the BSP fixpoint bit-identically
//       (clean AND straggler legs),
//   (b) a dup+reorder fault leg stays bit-identical AND folds each
//       (source, epoch) partial exactly once (the epoch ledger really
//       discards the injected duplicates), and
//   (c) at least one staleness setting shows lower exposed wait than BSP
//       under the straggler.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Leg {
  std::string name;
  std::uint64_t rounds = 0;
  double wall_s = 0;
  double wait_s = 0;  // max over ranks of exposed wait
  bool aborted = false;
  std::string what;
  std::vector<core::Tuple> rows;
};

Leg run_pagerank_leg(const graph::Graph& g, int ranks, std::size_t rounds,
                     bool ssp, std::size_t staleness,
                     const vmpi::FaultPlan* fault = nullptr, double watchdog = 0) {
  Leg leg;
  vmpi::RunOptions options;
  if (fault != nullptr) options.fault = *fault;
  options.watchdog_seconds = watchdog;
  std::vector<vmpi::CommStats> per_rank;
  vmpi::run_collect(
      ranks, options,
      [&](vmpi::Comm& comm) {
        queries::PagerankOptions opts;
        opts.rounds = rounds;
        opts.collect_ranks = true;
        if (ssp) {
          opts.tuning.use_async = true;
          opts.tuning.async.ssp = true;
          opts.tuning.async.ssp_staleness = staleness;
        }
        const auto r = run_pagerank(comm, g, opts);
        if (comm.rank() == 0) {
          leg.rows = r.ranks;
          leg.rounds = r.rounds;
          leg.wall_s = r.run.wall_seconds;
          leg.aborted = r.run.aborted_fault;
          leg.what = r.run.fault_what;
        }
      },
      per_rank);
  for (const auto& s : per_rank) leg.wait_s = std::max(leg.wait_s, s.wait_seconds);
  return leg;
}

/// Best-of-N: the run with the smallest exposed wait (one-core timesharing
/// makes single runs noisy; the minimum is the schedule's intrinsic cost).
Leg best_of(int n, const graph::Graph& g, int ranks, std::size_t rounds, bool ssp,
            std::size_t staleness, const vmpi::FaultPlan* fault = nullptr,
            double watchdog = 0) {
  Leg best = run_pagerank_leg(g, ranks, rounds, ssp, staleness, fault, watchdog);
  for (int i = 1; i < n; ++i) {
    Leg next = run_pagerank_leg(g, ranks, rounds, ssp, staleness, fault, watchdog);
    if (next.wait_s < best.wait_s) best = std::move(next);
  }
  return best;
}

/// Exactly-once probe: a $SUM kRefresh walk-count program run directly on
/// the AsyncEngine under dup+reorder injection, so the per-rank ledger
/// counters are visible.  Returns true iff every rank folded exactly
/// nranks partials per epoch and the ledger discarded at least one
/// injected duplicate somewhere.
bool fold_counts_exact_under_dup(const graph::Graph& g, int ranks,
                                 std::size_t epochs, double watchdog) {
  vmpi::RunOptions options;
  options.fault.seed = 202;
  options.fault.dup_prob = 0.10;
  options.fault.delay_prob = 0.08;
  options.watchdog_seconds = watchdog;
  std::vector<int> ok(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> discards(static_cast<std::size_t>(ranks), 0);
  vmpi::run(ranks, options, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* seed = program.relation({.name = "seed", .arity = 1, .jcc = 1});
    auto* paths = program.relation({.name = "paths",
                                    .arity = 2,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_sum_aggregator(),
                                    .agg_mode = core::AggMode::kRefresh});
    auto& s = program.stratum();
    s.fixpoint = false;
    s.max_rounds = epochs;
    s.loop_rules.push_back(core::CopyRule{
        .src = seed,
        .version = core::Version::kFull,
        .out = {.target = paths, .cols = {core::Expr::col_a(0), core::Expr::constant(1)}},
    });
    s.loop_rules.push_back(core::JoinRule{
        .a = paths,
        .a_version = core::Version::kFull,
        .b = edge,
        .b_version = core::Version::kFull,
        .out = {.target = paths, .cols = {core::Expr::col_b(1), core::Expr::col_a(1)}},
    });
    edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/false));
    std::vector<core::Tuple> seeds;
    if (comm.rank() == 0) seeds.push_back(core::Tuple{0});
    seed->load_facts(seeds);

    async::AsyncConfig cfg;
    cfg.ssp = true;
    cfg.ssp_staleness = 2;
    async::AsyncEngine engine(comm, cfg);
    const auto run = engine.run(program);
    const auto& ls = engine.loop_stats();
    const auto me = static_cast<std::size_t>(comm.rank());
    ok[me] = !run.aborted_fault && ls.ssp_epochs == epochs &&
             ls.ssp_partials_folded ==
                 static_cast<std::uint64_t>(ranks) * epochs;
    discards[me] = ls.ssp_ledger_discards;
  });
  std::uint64_t discards_total = 0;
  for (const auto d : discards) discards_total += d;
  for (const int o : ok) {
    if (o == 0) return false;
  }
  return discards_total > 0;  // the injection must actually have been caught
}

void emit(const Leg& l, const char* outcome) {
  std::printf("%-14s  %6llu  %8.3fs  %8.3fs  %s\n", l.name.c_str(),
              static_cast<unsigned long long>(l.rounds), l.wall_s, l.wait_s, outcome);
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  bool verdict = false;
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verdict") == 0) {
      verdict = true;
    } else {
      positional.push_back(std::atoi(argv[i]));
    }
  }
  const int ranks = positional.size() > 0 ? positional[0] : 6;
  const int scale = positional.size() > 1 ? positional[1] : 12;
  const std::size_t rounds = positional.size() > 2 ? static_cast<std::size_t>(positional[2]) : 10;

  banner("staleness sweep: SSP PageRank vs BSP, exactness and exposed wait",
         "n/a (bounded staleness is this repo's extension; the paper runs PageRank on BSP only)",
         "PageRank per staleness window; every leg must stay bit-identical to the BSP oracle");

  // Skewed RMAT: hub-heavy degree distribution is what makes BSP ranks wait
  // for the slowest peer every round.
  const auto g = graph::make_rmat({.scale = scale, .edge_factor = 8, .seed = 7});
  std::printf("graph rmat-s%d (skewed), %d ranks, %zu rounds, best of 3\n\n", scale,
              ranks, rounds);

  std::printf("%-14s  %6s  %9s  %9s  %s\n", "engine", "rounds", "wall", "wait(max)",
              "outcome");
  rule(56);

  Leg oracle = best_of(3, g, ranks, rounds, /*ssp=*/false, 0);
  oracle.name = "bsp";
  if (oracle.aborted || oracle.rows.empty()) {
    std::printf("BSP oracle run failed: %s\n", oracle.what.c_str());
    return 1;
  }
  emit(oracle, "oracle");

  const std::size_t kWindows[] = {0, 1, 2, 4, 8};
  bool all_exact = true;
  for (const std::size_t s : kWindows) {
    Leg leg = best_of(3, g, ranks, rounds, /*ssp=*/true, s);
    leg.name = "ssp s=" + std::to_string(s);
    const bool exact = !leg.aborted && leg.rows == oracle.rows;
    all_exact &= exact;
    emit(leg, exact ? "exact" : (leg.aborted ? "ABORTED" : "WRONG FIXPOINT"));
  }

  // Straggler legs: stall one rank for a fixed slice mid-run.  BSP peers
  // eat the whole stall at the next collective; an s-epoch window lets SSP
  // peers overlap s epochs of scan work with it.
  vmpi::FaultPlan straggler;
  straggler.stall_rank = 1;
  straggler.stall_epoch = 3;
  straggler.stall_seconds = 0.25;
  rule(56);
  Leg slow_bsp = best_of(3, g, ranks, rounds, /*ssp=*/false, 0, &straggler, 30.0);
  slow_bsp.name = "bsp+stall";
  all_exact &= !slow_bsp.aborted && slow_bsp.rows == oracle.rows;
  emit(slow_bsp, slow_bsp.rows == oracle.rows ? "exact" : "WRONG FIXPOINT");
  double best_ssp_wait = -1;
  std::string best_ssp_name;
  for (const std::size_t s : kWindows) {
    Leg leg = best_of(3, g, ranks, rounds, /*ssp=*/true, s, &straggler, 30.0);
    leg.name = "ssp+stall s=" + std::to_string(s);
    const bool exact = !leg.aborted && leg.rows == oracle.rows;
    all_exact &= exact;
    emit(leg, exact ? "exact" : (leg.aborted ? "ABORTED" : "WRONG FIXPOINT"));
    if (best_ssp_wait < 0 || leg.wait_s < best_ssp_wait) {
      best_ssp_wait = leg.wait_s;
      best_ssp_name = leg.name;
    }
  }
  rule(56);

  // Fault leg: exactness must survive an adversarial network too.
  vmpi::FaultPlan dup_reorder;
  dup_reorder.seed = 201;
  dup_reorder.dup_prob = 0.10;
  dup_reorder.delay_prob = 0.08;
  Leg faulted = run_pagerank_leg(g, ranks, rounds, /*ssp=*/true, 2, &dup_reorder,
                                 /*watchdog=*/10.0);
  faulted.name = "ssp+dup";
  const bool fault_exact = !faulted.aborted && faulted.rows == oracle.rows;
  emit(faulted, fault_exact ? "exact" : (faulted.aborted ? "ABORTED" : "WRONG FIXPOINT"));

  const bool folds_exact = fold_counts_exact_under_dup(g, ranks, rounds, 10.0);
  const bool wait_improves = best_ssp_wait >= 0 && best_ssp_wait < slow_bsp.wait_s;

  rule(56);
  std::printf("\nexactly-once fold counts under injected dup/reorder: %s\n",
              folds_exact ? "exact" : "VIOLATED");
  if (wait_improves) {
    std::printf("exposed wait under straggler: %s beats bsp+stall (%.3fs < %.3fs)\n",
                best_ssp_name.c_str(), best_ssp_wait, slow_bsp.wait_s);
  } else {
    std::printf("exposed wait under straggler: no window beat bsp+stall (%.3fs vs %.3fs)\n",
                best_ssp_wait, slow_bsp.wait_s);
  }

  if (!verdict) return 0;
  const bool pass = all_exact && fault_exact && folds_exact && wait_improves;
  std::printf("\nverdict: %s (exact=%d fault_exact=%d folds_exact=%d wait_improves=%d)\n",
              pass ? "PASS" : "FAIL", all_exact, fault_exact, folds_exact,
              wait_improves);
  return pass ? 0 : 1;
}

// BSP vs asynchronous engine on the same recursive query: where does a
// rank's time go when the input is skewed?
//
// Under BSP, a power-law hub makes one rank's local join long and every
// other rank pays for it at the next barrier (CommStats::wait_seconds).
// The async engine has no per-iteration barrier: idle ranks park in a
// blocking recv (drain), wake per message, and quiesce via the Safra ring.
// Both engines reach the bit-identical fixpoint, so the comparison is
// purely about where waiting happens — barrier-wait vs drain.
//
// Emits one JSON line per run (machine-friendly; pipe through jq), then a
// human-readable verdict: on the skewed graph, per-rank barrier-wait under
// async must be strictly lower than under BSP.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Row {
  const char* engine = "bsp";
  std::string graph;
  int ranks = 0;
  double wall_s = 0;
  double barrier_wait_s = 0;  // max per-rank seconds parked at collectives
  double drain_s = 0;         // max per-rank seconds parked in blocking recv
  double remote_mib = 0;
  std::uint64_t p2p_messages = 0;
  std::uint64_t iterations = 0;
  std::uint64_t paths = 0;
};

Row run_sssp_once(const graph::Graph& g, const std::vector<core::value_t>& sources,
                  int ranks, bool use_async) {
  Row row;
  row.engine = use_async ? "async" : "bsp";
  row.graph = g.name;
  row.ranks = ranks;

  std::vector<double> blocked(static_cast<std::size_t>(ranks), 0.0);
  std::vector<vmpi::CommStats> per_rank;
  vmpi::run_collect(
      ranks,
      [&](vmpi::Comm& comm) {
        core::Program program(comm);
        auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
        auto* spath = program.relation({.name = "spath",
                                        .arity = 3,
                                        .jcc = 1,
                                        .dep_arity = 1,
                                        .aggregator = core::make_min_aggregator()});
        auto& stratum = program.stratum();
        stratum.loop_rules.push_back(core::JoinRule{
            .a = spath,
            .a_version = core::Version::kDelta,
            .b = edge,
            .b_version = core::Version::kFull,
            .out = {.target = spath,
                    .cols = {core::Expr::col_b(1), core::Expr::col_a(1),
                             core::Expr::add(core::Expr::col_a(2), core::Expr::col_b(2))}},
        });
        edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/true));
        std::vector<core::Tuple> seeds;
        if (comm.rank() == 0) {
          for (core::value_t s : sources) seeds.push_back(core::Tuple{s, s, 0});
        }
        spath->load_facts(seeds);

        core::RunResult run;
        double my_blocked = 0;
        if (use_async) {
          async::AsyncEngine engine(comm);
          run = engine.run(program);
          my_blocked = engine.loop_stats().blocked_seconds;
        } else {
          core::Engine engine(comm);
          run = engine.run(program);
        }
        const auto blocked_all = comm.allgather<double>(my_blocked);
        const auto paths = spath->global_size(core::Version::kFull);
        if (comm.rank() == 0) {
          row.wall_s = run.wall_seconds;
          row.iterations = run.total_iterations;
          row.remote_mib = mib(run.comm_total.total_remote_bytes());
          row.p2p_messages = run.comm_total.messages_sent;
          row.paths = paths;
          blocked = blocked_all;
        }
      },
      per_rank);

  // wait_seconds counts every blocking primitive; subtracting the async
  // loop's own drain time leaves the collective (barrier) share.
  for (int r = 0; r < ranks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const double wait = per_rank[i].wait_seconds;
    row.barrier_wait_s = std::max(row.barrier_wait_s, std::max(0.0, wait - blocked[i]));
    row.drain_s = std::max(row.drain_s, blocked[i]);
  }
  return row;
}

void emit(const Row& r) {
  std::printf(
      "{\"engine\":\"%s\",\"query\":\"sssp\",\"graph\":\"%s\",\"ranks\":%d,"
      "\"wall_s\":%.6f,\"barrier_wait_s\":%.6f,\"drain_s\":%.6f,"
      "\"remote_mib\":%.3f,\"p2p_messages\":%llu,\"iterations\":%llu,"
      "\"paths\":%llu}\n",
      r.engine, r.graph.c_str(), r.ranks, r.wall_s, r.barrier_wait_s, r.drain_s,
      r.remote_mib, static_cast<unsigned long long>(r.p2p_messages),
      static_cast<unsigned long long>(r.iterations),
      static_cast<unsigned long long>(r.paths));
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 12;

  banner("async vs BSP: barrier-wait under skew",
         "SSSP, BSP engine vs nonblocking delta propagation, same fixpoint",
         "one JSON line per (graph, engine) run");

  // Skewed (power-law hubs) and uniform (grid) inputs at the same scale.
  const auto skewed = graph::make_twitter_like(scale, 10);
  const auto side = static_cast<std::uint64_t>(1) << (scale / 2);
  const auto uniform = graph::make_grid(side, side, 10, 7);

  for (const auto* g : {&skewed, &uniform}) {
    const auto sources = g->pick_hubs(3);
    Row bsp, async_row;
    for (int rep = 0; rep < 3; ++rep) {  // keep the best of 3 (scheduler noise)
      const auto b = run_sssp_once(*g, sources, ranks, /*use_async=*/false);
      const auto a = run_sssp_once(*g, sources, ranks, /*use_async=*/true);
      if (rep == 0 || b.wall_s < bsp.wall_s) bsp = b;
      if (rep == 0 || a.wall_s < async_row.wall_s) async_row = a;
    }
    if (bsp.paths != async_row.paths) {
      std::printf("MISMATCH on %s: bsp %llu paths vs async %llu\n", g->name.c_str(),
                  static_cast<unsigned long long>(bsp.paths),
                  static_cast<unsigned long long>(async_row.paths));
      return 1;
    }
    emit(bsp);
    emit(async_row);
  }

  std::printf("\nbarrier-wait is where BSP pays for skew; the async loop has no\n");
  std::printf("per-iteration barrier, so its collective share is init/exit only.\n");
  return 0;
}

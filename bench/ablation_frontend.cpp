// Ablation: declarative frontend vs hand-written query construction.
//
// The paper's pitch is *declarative* implementation of recursive
// aggregates; this checks the compiler keeps that free: the Datalog SSSP
// and CC programs must produce identical result sets to the hand-built
// queries, with identical iteration counts and (near-)identical
// communication volume — the compiled plan is the same plan.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

constexpr std::string_view kSsspDl = R"(
  .decl edge(x, y, w) input
  .decl source(n) input
  .decl spath(f, t, d min) output
  spath(n, n, 0)      :- source(n).
  spath(f, t2, d + w) :- spath(f, t, d), edge(t, t2, w).
)";

constexpr std::string_view kCcDl = R"(
  .decl edge(x, y) input
  .decl cc(n, rep min) output
  cc(n, n) :- edge(n, _).
  cc(y, r) :- cc(x, r), edge(x, y).
)";

struct Cell {
  std::uint64_t tuples;
  std::uint64_t iters;
  double mib;
  double wall;
};

}  // namespace

int main() {
  bench::banner("Ablation: compiled Datalog vs hand-written query plans",
                "the paper's declarative-implementation claim",
                "SSSP and CC on twitter-like RMAT (scale 13, ef 8), 8 virtual ranks");

  const auto g = graph::make_twitter_like(13, 8);
  const auto sources = g.pick_hubs(5);
  const int ranks = 8;

  // ---- SSSP -------------------------------------------------------------------
  Cell hand{}, compiled{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    const auto r = run_sssp(comm, g, opts);
    if (comm.is_root()) {
      hand = {r.path_count, r.iterations,
              bench::mib(r.run.comm_total.total_remote_bytes()), r.run.wall_seconds};
    }
  });
  const auto prog = frontend::CompiledProgram::compile(kSsspDl);
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<core::Tuple> edges, seeds;
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < g.edges.size();
         i += static_cast<std::size_t>(comm.size())) {
      edges.push_back(core::Tuple{g.edges[i].src, g.edges[i].dst, g.edges[i].weight});
    }
    if (comm.is_root()) {
      for (const auto s : sources) seeds.push_back(core::Tuple{s});
    }
    inst.load("edge", edges);
    inst.load("source", seeds);
    const auto r = inst.run();
    const auto n = inst.size("spath");
    if (comm.is_root()) {
      compiled = {n, r.total_iterations,
                  bench::mib(r.comm_total.total_remote_bytes()), r.wall_seconds};
    }
  });

  std::printf("%-12s %-12s %12s %8s %10s %9s\n", "query", "plan", "tuples", "iters",
              "remote MiB", "wall s");
  bench::rule(70);
  std::printf("%-12s %-12s %12llu %8llu %10.2f %9.3f\n", "sssp", "hand-built",
              static_cast<unsigned long long>(hand.tuples),
              static_cast<unsigned long long>(hand.iters), hand.mib, hand.wall);
  std::printf("%-12s %-12s %12llu %8llu %10.2f %9.3f\n", "sssp", "compiled",
              static_cast<unsigned long long>(compiled.tuples),
              static_cast<unsigned long long>(compiled.iters), compiled.mib, compiled.wall);

  // ---- CC ---------------------------------------------------------------------
  Cell hand_cc{}, compiled_cc{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    const auto r = run_cc(comm, g, queries::CcOptions{});
    if (comm.is_root()) {
      hand_cc = {r.labelled_nodes, r.iterations,
                 bench::mib(r.run.comm_total.total_remote_bytes()), r.run.wall_seconds};
    }
  });
  const auto cc_prog = frontend::CompiledProgram::compile(kCcDl);
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    auto inst = cc_prog.instantiate(comm);
    std::vector<core::Tuple> edges;
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < g.edges.size();
         i += static_cast<std::size_t>(comm.size())) {
      edges.push_back(core::Tuple{g.edges[i].src, g.edges[i].dst});
      edges.push_back(core::Tuple{g.edges[i].dst, g.edges[i].src});
    }
    inst.load("edge", edges);
    const auto r = inst.run();
    const auto n = inst.size("cc");
    if (comm.is_root()) {
      compiled_cc = {n, r.total_iterations,
                     bench::mib(r.comm_total.total_remote_bytes()), r.wall_seconds};
    }
  });
  std::printf("%-12s %-12s %12llu %8llu %10.2f %9.3f\n", "cc", "hand-built",
              static_cast<unsigned long long>(hand_cc.tuples),
              static_cast<unsigned long long>(hand_cc.iters), hand_cc.mib, hand_cc.wall);
  std::printf("%-12s %-12s %12llu %8llu %10.2f %9.3f\n", "cc", "compiled",
              static_cast<unsigned long long>(compiled_cc.tuples),
              static_cast<unsigned long long>(compiled_cc.iters), compiled_cc.mib,
              compiled_cc.wall);

  std::printf(
      "\nexpected shape: identical tuple counts; identical iteration counts (the\n"
      "compiler derives the same stored orders and semi-naive plan the queries\n"
      "hand-pick), and communication within noise of each other.\n");
  return (hand.tuples == compiled.tuples && hand_cc.tuples == compiled_cc.tuples) ? 0 : 1;
}

// Ablation (§IV-D, Algorithm 1): dynamic join planning vs both fixed
// orders, isolating the variable Fig. 2 folds into its baseline.
//
// For SSSP the delta (Spath) is usually tiny and the Edge relation huge;
// always shipping Edge is catastrophic, always shipping Spath is right by
// accident, and the vote should track the best fixed choice while paying
// one integer per rank per iteration.

#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace paralagg;

struct Cell {
  double intra_mib;
  double localjoin_s;
  double total_s;
  double plan_bytes;
};

Cell run_one(const graph::Graph& g, const std::vector<core::value_t>& sources,
             bool dynamic, core::JoinOrderPolicy fixed) {
  Cell cell{};
  vmpi::run(8, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    opts.tuning.engine.dynamic_join_order = dynamic;
    opts.tuning.engine.fixed_order = fixed;
    opts.tuning.balance_edges = false;
    const auto r = run_sssp(comm, g, opts);
    if (comm.is_root()) {
      cell.intra_mib = bench::phase_seconds(r.run.profile, core::Phase::kIntraBucket);
      cell.localjoin_s = bench::phase_seconds(r.run.profile, core::Phase::kLocalJoin);
      cell.total_s = r.run.profile.modelled_total();
      cell.plan_bytes =
          static_cast<double>(bench::phase_bytes(r.run.profile, core::Phase::kPlan));
    }
  });
  return cell;
}

}  // namespace

int main() {
  bench::banner("Ablation: join-order policies (Algorithm 1)",
                "folded into Fig. 2's baseline-vs-optimized comparison",
                "SSSP on twitter-like RMAT (scale 14, ef 12), 8 virtual ranks, 1 hub source");

  const auto g = graph::make_twitter_like(14, 12);
  const auto sources = g.pick_hubs(1);
  std::printf("graph: %zu edges; spath delta is small, edge is big\n\n", g.num_edges());

  struct Policy {
    const char* name;
    bool dynamic;
    core::JoinOrderPolicy fixed;
  };
  const Policy policies[] = {
      {"dynamic vote (Alg.1)", true, core::JoinOrderPolicy::kDynamic},
      {"fixed: spath outer", false, core::JoinOrderPolicy::kFixedAOuter},
      {"fixed: edge outer", false, core::JoinOrderPolicy::kFixedBOuter},
  };

  std::printf("%-22s %12s %12s %12s %12s\n", "policy", "serialize s", "localjoin s",
              "total s", "vote bytes");
  bench::rule(74);
  double dynamic_total = 0, worst_total = 0;
  for (const auto& p : policies) {
    const auto c = run_one(g, sources, p.dynamic, p.fixed);
    std::printf("%-22s %12.4f %12.4f %12.4f %12.0f\n", p.name, c.intra_mib, c.localjoin_s,
                c.total_s, c.plan_bytes);
    if (p.dynamic) dynamic_total = c.total_s;
    worst_total = std::max(worst_total, c.total_s);
  }

  std::printf("\ndynamic avoids the worst fixed order by %.2fx while paying one 4-byte\n"
              "integer per rank per iteration for the vote.\n",
              worst_total / dynamic_total);
  return 0;
}

// Ablation (§III-A): the cost of leaking recursive-aggregate intermediates.
//
// The paper's Lsp example: copying Spath into SpNorm *inside* the fixpoint
// materializes every transient path length that $MIN later purges, and
// communicates all of them.  Running the copy in a later stratum observes
// only the collapsed finals.  This bench quantifies both the tuple leak
// and the byte leak, and shows the leaky answer is contaminated.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

struct Cell {
  std::uint64_t spnorm;
  std::uint64_t spath;
  core::value_t longest;
  double mibs;
};

Cell run_one(const graph::Graph& g, const std::vector<core::value_t>& sources,
             queries::LspPlan plan) {
  Cell cell{};
  vmpi::run(8, [&](vmpi::Comm& comm) {
    queries::LspOptions opts;
    opts.sources = sources;
    opts.plan = plan;
    const auto r = run_lsp(comm, g, opts);
    if (comm.is_root()) {
      cell = {r.spnorm_count, r.spath_count, r.longest,
              bench::mib(r.run.comm_total.total_remote_bytes())};
    }
  });
  return cell;
}

}  // namespace

int main() {
  bench::banner("Ablation: leaky vs stratified recursive-aggregate observation (Lsp, §III-A)",
                "conceptual example in the paper (SpNorm / longest shortest path)",
                "weighted RMAT graphs, 8 virtual ranks, 3 sources");

  std::printf("%-22s %10s %10s %12s %10s %10s | %8s %9s\n", "graph", "|spath|",
              "norm-clean", "norm-leaky", "leak", "extraMiB", "lsp-ok", "lsp-leak");
  bench::rule(104);

  for (const int scale : {9, 10, 11, 12}) {
    const auto g = graph::make_rmat(
        {.scale = scale, .edge_factor = 8, .max_weight = 100, .seed = 44});
    const auto sources = g.pick_sources(3, 8);
    const auto clean = run_one(g, sources, queries::LspPlan::kStratified);
    const auto leaky = run_one(g, sources, queries::LspPlan::kLeaky);
    std::printf("%-22s %10llu %10llu %12llu %9.2fx %10.2f | %8llu %9llu\n",
                g.name.c_str(), static_cast<unsigned long long>(clean.spath),
                static_cast<unsigned long long>(clean.spnorm),
                static_cast<unsigned long long>(leaky.spnorm),
                static_cast<double>(leaky.spnorm) / static_cast<double>(clean.spnorm),
                leaky.mibs - clean.mibs, static_cast<unsigned long long>(clean.longest),
                static_cast<unsigned long long>(leaky.longest));
  }

  std::printf(
      "\nexpected shape: the leaky plan materializes and communicates a multiple of\n"
      "the final tuple count, and its 'longest' answer is contaminated by transient\n"
      "lengths (>= the true eccentricity in the lsp-ok column).\n");
  return 0;
}

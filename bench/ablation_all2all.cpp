// Ablation: dense MPI_Alltoallv vs the Bruck log-round exchange.
//
// The paper's intra-bucket phase is built on all-to-all exchanges, and the
// authors' companion work (Fan et al., HPDC'22, cited as [16]) optimises
// the Bruck algorithm for exactly the non-uniform exchanges iterated
// relational algebra produces.  This ablation reproduces the trade-off on
// vmpi: per-rank message count (one per destination vs ceil(log2 n))
// against relayed byte volume — Bruck wins when exchanges are sparse and
// latency-bound (tiny deltas at high rank counts, the Fig. 5 tail), dense
// wins when they are bandwidth-bound (early iterations).

#include <chrono>

#include "bench_common.hpp"

namespace {

using namespace paralagg;

template <typename T>
void do_not_optimize(T&& v) {
  asm volatile("" : : "g"(v) : "memory");
}

struct Cell {
  std::uint64_t messages;  // network messages a real MPI would send
  double mib;              // remote bytes actually moved (incl. relays)
};

/// One exchange pattern: each rank sends `payload` bytes to `fanout`
/// pseudo-random destinations, `reps` times.
Cell run_pattern(int ranks, int fanout, std::size_t payload, int reps, bool bruck) {
  Cell cell{};
  std::uint64_t dense_msgs = 0;
  const auto total = vmpi::run(ranks, [&](vmpi::Comm& comm) {
    graph::Rng rng(static_cast<std::uint64_t>(comm.rank()) * 7919 + 1);
    std::uint64_t my_dense_msgs = 0;
    for (int r = 0; r < reps; ++r) {
      std::vector<vmpi::Bytes> send(static_cast<std::size_t>(comm.size()));
      for (int f = 0; f < fanout; ++f) {
        const auto dst = rng.below(static_cast<std::uint64_t>(comm.size()));
        send[dst].assign(payload, std::byte{0x5a});
      }
      for (int d = 0; d < comm.size(); ++d) {
        if (d != comm.rank() && !send[static_cast<std::size_t>(d)].empty()) {
          ++my_dense_msgs;  // what a network alltoallv would transmit
        }
      }
      auto got = bruck ? comm.alltoallv_bruck(std::move(send))
                       : comm.alltoallv(std::move(send));
      do_not_optimize(got.size());
    }
    vmpi::StatsPause pause(comm);
    const auto sum = comm.allreduce<std::uint64_t>(my_dense_msgs, vmpi::ReduceOp::kSum);
    if (comm.is_root()) dense_msgs = sum;
  });
  cell.messages = bruck ? total.messages_sent : dense_msgs;
  cell.mib = bench::mib(total.total_remote_bytes());
  return cell;
}

}  // namespace

int main() {
  bench::banner("Ablation: dense alltoallv vs Bruck log-round exchange",
                "Fan et al. (HPDC'22), the all-to-all optimisation the paper builds on",
                "synthetic exchange patterns on vmpi, 32/64 ranks, 20 repetitions");

  std::printf("%6s %8s %9s | %10s %10s %12s | %10s %10s\n", "ranks", "fanout", "payload",
              "msgs dense", "msgs bruck", "msg cut", "MiB dense", "MiB bruck");
  bench::rule(96);

  for (const int ranks : {32, 64}) {
    struct Pattern {
      int fanout;
      std::size_t payload;
    };
    for (const auto& [fanout, payload] :
         {Pattern{2, 64}, Pattern{8, 64}, Pattern{2, 8192}, Pattern{ranks, 512}}) {
      const auto dense = run_pattern(ranks, fanout, payload, 20, false);
      const auto bruck = run_pattern(ranks, fanout, payload, 20, true);
      std::printf("%6d %8d %8zuB | %10llu %10llu %11.1fx | %10.3f %10.3f\n", ranks, fanout,
                  payload, static_cast<unsigned long long>(dense.messages),
                  static_cast<unsigned long long>(bruck.messages),
                  static_cast<double>(dense.messages) /
                      static_cast<double>(bruck.messages ? bruck.messages : 1),
                  dense.mib, bruck.mib);
    }
  }

  std::printf(
      "\nexpected shape: Bruck caps messages at ceil(log2 n) per rank per exchange\n"
      "regardless of how many destinations are hit, at the price of relayed bytes.\n"
      "The message cut grows with fanout (6-7x for full fanout at 64 ranks) —\n"
      "the regime of the engine's tuple shuffles — while for very sparse or very\n"
      "fat exchanges the dense algorithm's lower byte volume wins.  This is the\n"
      "latency/bandwidth trade Fan et al. navigate with non-uniform Bruck.\n");
  return 0;
}

// Topology-aware two-level exchange: does routing the tuple exchange
// through per-node aggregator ranks cut cross-node volume, and do the
// log-step collective schedules cut latency-bearing rounds?
//
// Sweep: 16..64 ranks grouped 8 ranks per modeled node, three configs per
// size over the same single-rule SSSP fixpoint:
//
//   dense-linear — flat matrix alltoallv, O(n)-step slot collectives
//   dense-rd     — flat matrix alltoallv, recursive-doubling collectives
//   hier-rd      — two-level exchange (node aggregators pre-merge MIN
//                  deltas, leaders-only ialltoallv, intra-node scatter)
//
// All three run under the SAME node grouping, so the cross-node byte split
// is apples to apples; only the routing and the schedule differ.  Metrics
// come straight from the CommStats counters: cross- vs intra-node bytes
// under Op::kAlltoallv (the tuple exchange), and steps-per-call for the
// allreduce/allgather the BSP termination vote issues every iteration.
//
// The verdict is counter-based, at 32 ranks grouped 4x8:
//   * hier-rd must ship strictly fewer cross-node tuple-exchange bytes
//     than dense-rd (the node-level pre-merge must pay for itself), and
//   * dense-rd's allreduce must take ceil(log2 32) = 5 steps per call
//     where dense-linear takes 31, and
//   * every config must reach the bit-identical fixpoint.
// Any violation exits nonzero.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace paralagg::bench {
namespace {

struct Config {
  const char* name = "dense-rd";
  core::ExchangeAlgorithm exchange = core::ExchangeAlgorithm::kDense;
  vmpi::CollectiveSchedule schedule = vmpi::CollectiveSchedule::kRecursiveDoubling;
};

struct Row {
  std::string config;
  int ranks = 0;
  int nodes = 0;
  double a2a_cross_mib = 0;   // tuple-exchange bytes that crossed nodes
  double a2a_intra_mib = 0;   // tuple-exchange bytes that stayed on-node
  double allreduce_steps_per_call = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t iterations = 0;
  std::uint64_t paths = 0;
  double wall_s = 0;
  double topo_projected_s = 0;
};

Row run_once(const graph::Graph& g, const std::vector<core::value_t>& sources, int ranks,
             int nodes, const Config& cfg) {
  Row row;
  row.config = cfg.name;
  row.ranks = ranks;
  row.nodes = nodes;

  vmpi::RunOptions ropts;
  ropts.topology = vmpi::Topology::grouped(ranks, nodes);
  ropts.schedule = cfg.schedule;
  vmpi::run(ranks, ropts, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    opts.tuning.engine.exchange = cfg.exchange;
    opts.tuning.engine.balance.enabled = false;  // keep routing the only variable
    const auto r = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      const auto& st = r.run.comm_total;
      row.a2a_cross_mib = mib(st.cross_node_bytes(vmpi::Op::kAlltoallv));
      row.a2a_intra_mib = mib(st.intra_node_bytes(vmpi::Op::kAlltoallv));
      const auto calls = st.calls_of(vmpi::Op::kAllreduce);
      row.allreduce_steps_per_call =
          calls == 0 ? 0
                     : static_cast<double>(st.steps_of(vmpi::Op::kAllreduce)) /
                           static_cast<double>(calls);
      row.total_steps = st.total_steps();
      row.iterations = r.run.total_iterations;
      row.paths = r.path_count;
      row.wall_s = r.run.wall_seconds;
      row.topo_projected_s = core::CostModel{}.project_topology(r.run.profile);
    }
  });
  return row;
}

void emit(const Row& r) {
  std::printf(
      "{\"config\":\"%s\",\"query\":\"sssp\",\"ranks\":%d,\"nodes\":%d,"
      "\"a2a_cross_mib\":%.4f,\"a2a_intra_mib\":%.4f,"
      "\"allreduce_steps_per_call\":%.2f,\"total_steps\":%llu,"
      "\"iterations\":%llu,\"paths\":%llu,\"wall_s\":%.6f,"
      "\"topo_projected_s\":%.6f}\n",
      r.config.c_str(), r.ranks, r.nodes, r.a2a_cross_mib, r.a2a_intra_mib,
      r.allreduce_steps_per_call, static_cast<unsigned long long>(r.total_steps),
      static_cast<unsigned long long>(r.iterations),
      static_cast<unsigned long long>(r.paths), r.wall_s, r.topo_projected_s);
}

}  // namespace
}  // namespace paralagg::bench

int main(int argc, char** argv) {
  using namespace paralagg;
  using namespace paralagg::bench;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 10;

  banner("two-level exchange + log-step schedules",
         "SSSP under a modeled node topology (8 ranks per node)",
         "one JSON line per (ranks, config); verdict at 32 ranks / 4 nodes");

  const auto g = graph::make_twitter_like(scale, 10);
  const auto sources = g.pick_hubs(3);

  const Config kConfigs[] = {
      {"dense-linear", core::ExchangeAlgorithm::kDense, vmpi::CollectiveSchedule::kLinear},
      {"dense-rd", core::ExchangeAlgorithm::kDense,
       vmpi::CollectiveSchedule::kRecursiveDoubling},
      {"hier-rd", core::ExchangeAlgorithm::kHierarchical,
       vmpi::CollectiveSchedule::kRecursiveDoubling},
  };

  Row dense_linear32, dense_rd32, hier_rd32;
  bool fixpoint_ok = true;
  for (const int ranks : {16, 32, 64}) {
    const int nodes = ranks / 8;
    std::uint64_t paths = 0;
    bool first = true;
    for (const Config& cfg : kConfigs) {
      const Row row = run_once(g, sources, ranks, nodes, cfg);
      emit(row);
      if (first) {
        paths = row.paths;
        first = false;
      } else if (row.paths != paths) {
        std::printf("MISMATCH at %d ranks: %s reached %llu paths, expected %llu\n",
                    ranks, row.config.c_str(),
                    static_cast<unsigned long long>(row.paths),
                    static_cast<unsigned long long>(paths));
        fixpoint_ok = false;
      }
      if (ranks == 32) {
        if (row.config == "dense-linear") dense_linear32 = row;
        if (row.config == "dense-rd") dense_rd32 = row;
        if (row.config == "hier-rd") hier_rd32 = row;
      }
    }
  }

  rule();
  bool ok = fixpoint_ok;
  if (!fixpoint_ok) std::printf("VERDICT: FAIL — fixpoints diverged across configs\n");

  if (hier_rd32.a2a_cross_mib >= dense_rd32.a2a_cross_mib) {
    std::printf("VERDICT: FAIL — hier cross-node a2a %.4f MiB >= dense %.4f MiB at 32/4\n",
                hier_rd32.a2a_cross_mib, dense_rd32.a2a_cross_mib);
    ok = false;
  } else {
    std::printf("cross-node a2a at 32 ranks / 4 nodes: hier %.4f MiB < dense %.4f MiB "
                "(%.1f%% saved)\n",
                hier_rd32.a2a_cross_mib, dense_rd32.a2a_cross_mib,
                100.0 * (1.0 - hier_rd32.a2a_cross_mib / dense_rd32.a2a_cross_mib));
  }

  const double log_steps = std::ceil(std::log2(32.0));
  if (dense_rd32.allreduce_steps_per_call > log_steps ||
      dense_linear32.allreduce_steps_per_call != 31.0) {
    std::printf("VERDICT: FAIL — allreduce steps/call: rd %.2f (want <= %.0f), "
                "linear %.2f (want 31)\n",
                dense_rd32.allreduce_steps_per_call, log_steps,
                dense_linear32.allreduce_steps_per_call);
    ok = false;
  } else {
    std::printf("allreduce steps/call at 32 ranks: rd %.2f (= log2 n) vs linear %.2f "
                "(= n-1)\n",
                dense_rd32.allreduce_steps_per_call,
                dense_linear32.allreduce_steps_per_call);
  }

  if (!ok) return 1;
  std::printf("VERDICT: PASS — fewer cross-node bytes under the two-level exchange, "
              "O(log n) collective steps, bit-identical fixpoints\n");
  return 0;
}

// Figure 2: strong-scaling phase breakdown for SSSP on the Twitter
// stand-in, Baseline ("B": fixed join order, no balancing) vs Optimized
// ("O": dynamic join planning + spatial load balancing).
//
// Paper result: the optimized run is ~2x faster overall; the gap is
// concentrated in local join (the baseline serializes the big Edge
// relation, degrading the join toward linear scans), while the "comm"
// phase (all-to-all of generated tuples) is unchanged by the optimization.

#include "bench_common.hpp"

namespace {

using namespace paralagg;

struct Cell {
  double phase[core::kPhaseCount];
  double total;
  double wall;
};

Cell run_one(const graph::Graph& g, const std::vector<core::value_t>& sources, int ranks,
             bool optimized) {
  Cell cell{};
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    if (optimized) {
      opts.tuning.edge_sub_buckets = 8;
    } else {
      opts.tuning = queries::QueryTuning::baseline();
      // Fig. 2's baseline mistake: always serialize side B (the Edge
      // relation) in the recursive join.
      opts.tuning.engine.fixed_order = core::JoinOrderPolicy::kFixedBOuter;
    }
    const auto result = run_sssp(comm, g, opts);
    if (comm.is_root()) {
      for (std::size_t p = 0; p < core::kPhaseCount; ++p) {
        cell.phase[p] = result.run.profile.modelled_seconds[p];
      }
      cell.total = result.run.profile.modelled_total();
      cell.wall = result.run.wall_seconds;
    }
  });
  return cell;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 2: SSSP phase breakdown, Baseline (B) vs Optimized (O)",
      "Twitter-2010 (1.47B edges) on Theta, 256-8192 processes",
      "twitter-like RMAT (scale 14, ef 12, a=0.65), 4-32 virtual ranks, modelled seconds");

  const auto g = graph::make_twitter_like(14, 12);
  // One hub source: at container scale this reproduces the paper regime
  // (frontier small relative to |E|), which 10 sources give at Twitter scale.
  const auto sources = g.pick_hubs(1);
  std::printf("graph: %zu edges, degree skew %.1fx, %zu hub sources\n\n",
              g.num_edges(), g.degree_skew(), sources.size());

  std::printf("%6s %3s %10s %10s %10s %10s %10s %10s %10s | %10s %8s\n", "ranks", "cfg",
              "balance", "plan", "intra", "localjoin", "comm", "dedup", "other", "total",
              "wall");
  bench::rule(118);

  for (const int ranks : {4, 8, 16, 32}) {
    Cell cells[2];
    cells[0] = run_one(g, sources, ranks, false);
    cells[1] = run_one(g, sources, ranks, true);
    for (int o = 0; o < 2; ++o) {
      const auto& c = cells[o];
      std::printf("%6d %3s", ranks, o ? "O" : "B");
      for (std::size_t p = 0; p < core::kPhaseCount; ++p) std::printf(" %10.4f", c.phase[p]);
      std::printf(" | %10.4f %8.3f\n", c.total, c.wall);
    }
    const auto lj = static_cast<std::size_t>(core::Phase::kLocalJoin);
    std::printf("%10s speedup O vs B: total %.2fx, local join %.2fx\n\n", "",
                cells[0].total / cells[1].total, cells[0].phase[lj] / cells[1].phase[lj]);
  }

  std::printf("expected shape: O ~2-3x faster end-to-end; the gap sits in the join pipeline\n"
              "(the baseline serializes the whole Edge relation every iteration -- 'intra' --\n"
              "and burns probes scanning it through the local join), while the all-to-all\n"
              "'comm' column is untouched by the optimization, exactly as in the paper.\n");
  return 0;
}

# Empty compiler generated dependencies file for paralagg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libparalagg.a"
)

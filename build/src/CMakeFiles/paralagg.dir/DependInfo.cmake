
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/shuffle_engine.cpp" "src/CMakeFiles/paralagg.dir/baseline/shuffle_engine.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/baseline/shuffle_engine.cpp.o.d"
  "/root/repo/src/baseline/stratified_engine.cpp" "src/CMakeFiles/paralagg.dir/baseline/stratified_engine.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/baseline/stratified_engine.cpp.o.d"
  "/root/repo/src/core/aggregator.cpp" "src/CMakeFiles/paralagg.dir/core/aggregator.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/aggregator.cpp.o.d"
  "/root/repo/src/core/balancer.cpp" "src/CMakeFiles/paralagg.dir/core/balancer.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/balancer.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/paralagg.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/join_planner.cpp" "src/CMakeFiles/paralagg.dir/core/join_planner.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/join_planner.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/CMakeFiles/paralagg.dir/core/profile.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/profile.cpp.o.d"
  "/root/repo/src/core/ra_op.cpp" "src/CMakeFiles/paralagg.dir/core/ra_op.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/ra_op.cpp.o.d"
  "/root/repo/src/core/relation.cpp" "src/CMakeFiles/paralagg.dir/core/relation.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/core/relation.cpp.o.d"
  "/root/repo/src/frontend/compiler.cpp" "src/CMakeFiles/paralagg.dir/frontend/compiler.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/frontend/compiler.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/paralagg.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/paralagg.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/paralagg.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/zoo.cpp" "src/CMakeFiles/paralagg.dir/graph/zoo.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/graph/zoo.cpp.o.d"
  "/root/repo/src/queries/cc.cpp" "src/CMakeFiles/paralagg.dir/queries/cc.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/cc.cpp.o.d"
  "/root/repo/src/queries/lsp.cpp" "src/CMakeFiles/paralagg.dir/queries/lsp.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/lsp.cpp.o.d"
  "/root/repo/src/queries/pagerank.cpp" "src/CMakeFiles/paralagg.dir/queries/pagerank.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/pagerank.cpp.o.d"
  "/root/repo/src/queries/reference.cpp" "src/CMakeFiles/paralagg.dir/queries/reference.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/reference.cpp.o.d"
  "/root/repo/src/queries/sssp.cpp" "src/CMakeFiles/paralagg.dir/queries/sssp.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/sssp.cpp.o.d"
  "/root/repo/src/queries/sssp_tree.cpp" "src/CMakeFiles/paralagg.dir/queries/sssp_tree.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/sssp_tree.cpp.o.d"
  "/root/repo/src/queries/tc.cpp" "src/CMakeFiles/paralagg.dir/queries/tc.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/tc.cpp.o.d"
  "/root/repo/src/queries/triangles.cpp" "src/CMakeFiles/paralagg.dir/queries/triangles.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/queries/triangles.cpp.o.d"
  "/root/repo/src/storage/btree.cpp" "src/CMakeFiles/paralagg.dir/storage/btree.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/storage/btree.cpp.o.d"
  "/root/repo/src/storage/tuple.cpp" "src/CMakeFiles/paralagg.dir/storage/tuple.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/storage/tuple.cpp.o.d"
  "/root/repo/src/vmpi/comm.cpp" "src/CMakeFiles/paralagg.dir/vmpi/comm.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/vmpi/comm.cpp.o.d"
  "/root/repo/src/vmpi/runtime.cpp" "src/CMakeFiles/paralagg.dir/vmpi/runtime.cpp.o" "gcc" "src/CMakeFiles/paralagg.dir/vmpi/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fig3_tuple_cdf.
# This may be replaced when dependencies are built.

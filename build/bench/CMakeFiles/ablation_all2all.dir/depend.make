# Empty dependencies file for ablation_all2all.
# This may be replaced when dependencies are built.

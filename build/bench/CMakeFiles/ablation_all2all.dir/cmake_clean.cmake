file(REMOVE_RECURSE
  "CMakeFiles/ablation_all2all.dir/ablation_all2all.cpp.o"
  "CMakeFiles/ablation_all2all.dir/ablation_all2all.cpp.o.d"
  "ablation_all2all"
  "ablation_all2all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_all2all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

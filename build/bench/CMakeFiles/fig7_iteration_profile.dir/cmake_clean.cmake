file(REMOVE_RECURSE
  "CMakeFiles/fig7_iteration_profile.dir/fig7_iteration_profile.cpp.o"
  "CMakeFiles/fig7_iteration_profile.dir/fig7_iteration_profile.cpp.o.d"
  "fig7_iteration_profile"
  "fig7_iteration_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_iteration_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

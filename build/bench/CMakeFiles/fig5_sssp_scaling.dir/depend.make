# Empty dependencies file for fig5_sssp_scaling.
# This may be replaced when dependencies are built.

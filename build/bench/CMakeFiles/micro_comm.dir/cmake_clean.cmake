file(REMOVE_RECURSE
  "CMakeFiles/micro_comm.dir/micro_comm.cpp.o"
  "CMakeFiles/micro_comm.dir/micro_comm.cpp.o.d"
  "micro_comm"
  "micro_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_cc_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_sssp_phases.dir/fig2_sssp_phases.cpp.o"
  "CMakeFiles/fig2_sssp_phases.dir/fig2_sssp_phases.cpp.o.d"
  "fig2_sssp_phases"
  "fig2_sssp_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sssp_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

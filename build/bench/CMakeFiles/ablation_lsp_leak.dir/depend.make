# Empty dependencies file for ablation_lsp_leak.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_lsp_leak.dir/ablation_lsp_leak.cpp.o"
  "CMakeFiles/ablation_lsp_leak.dir/ablation_lsp_leak.cpp.o.d"
  "ablation_lsp_leak"
  "ablation_lsp_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lsp_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_cc_subbuckets.
# This may be replaced when dependencies are built.

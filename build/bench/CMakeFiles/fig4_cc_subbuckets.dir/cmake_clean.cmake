file(REMOVE_RECURSE
  "CMakeFiles/fig4_cc_subbuckets.dir/fig4_cc_subbuckets.cpp.o"
  "CMakeFiles/fig4_cc_subbuckets.dir/fig4_cc_subbuckets.cpp.o.d"
  "fig4_cc_subbuckets"
  "fig4_cc_subbuckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cc_subbuckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_join_planning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_join_planning.dir/ablation_join_planning.cpp.o"
  "CMakeFiles/ablation_join_planning.dir/ablation_join_planning.cpp.o.d"
  "ablation_join_planning"
  "ablation_join_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_join_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

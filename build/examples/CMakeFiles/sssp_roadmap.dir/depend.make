# Empty dependencies file for sssp_roadmap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sssp_roadmap.dir/sssp_roadmap.cpp.o"
  "CMakeFiles/sssp_roadmap.dir/sssp_roadmap.cpp.o.d"
  "sssp_roadmap"
  "sssp_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

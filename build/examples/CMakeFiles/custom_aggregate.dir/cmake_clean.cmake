file(REMOVE_RECURSE
  "CMakeFiles/custom_aggregate.dir/custom_aggregate.cpp.o"
  "CMakeFiles/custom_aggregate.dir/custom_aggregate.cpp.o.d"
  "custom_aggregate"
  "custom_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for custom_aggregate.
# This may be replaced when dependencies are built.

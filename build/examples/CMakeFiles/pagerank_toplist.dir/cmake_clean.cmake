file(REMOVE_RECURSE
  "CMakeFiles/pagerank_toplist.dir/pagerank_toplist.cpp.o"
  "CMakeFiles/pagerank_toplist.dir/pagerank_toplist.cpp.o.d"
  "pagerank_toplist"
  "pagerank_toplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_toplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pagerank_toplist.
# This may be replaced when dependencies are built.

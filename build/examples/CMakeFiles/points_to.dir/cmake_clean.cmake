file(REMOVE_RECURSE
  "CMakeFiles/points_to.dir/points_to.cpp.o"
  "CMakeFiles/points_to.dir/points_to.cpp.o.d"
  "points_to"
  "points_to.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/points_to.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

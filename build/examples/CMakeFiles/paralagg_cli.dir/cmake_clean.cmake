file(REMOVE_RECURSE
  "CMakeFiles/paralagg_cli.dir/paralagg_cli.cpp.o"
  "CMakeFiles/paralagg_cli.dir/paralagg_cli.cpp.o.d"
  "paralagg_cli"
  "paralagg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paralagg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

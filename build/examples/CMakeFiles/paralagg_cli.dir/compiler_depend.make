# Empty compiler generated dependencies file for paralagg_cli.
# This may be replaced when dependencies are built.

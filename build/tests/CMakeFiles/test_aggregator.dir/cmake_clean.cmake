file(REMOVE_RECURSE
  "CMakeFiles/test_aggregator.dir/test_aggregator.cpp.o"
  "CMakeFiles/test_aggregator.dir/test_aggregator.cpp.o.d"
  "test_aggregator"
  "test_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_queries_sssp.dir/test_queries_sssp.cpp.o"
  "CMakeFiles/test_queries_sssp.dir/test_queries_sssp.cpp.o.d"
  "test_queries_sssp"
  "test_queries_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

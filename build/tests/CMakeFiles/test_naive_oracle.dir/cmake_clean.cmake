file(REMOVE_RECURSE
  "CMakeFiles/test_naive_oracle.dir/test_naive_oracle.cpp.o"
  "CMakeFiles/test_naive_oracle.dir/test_naive_oracle.cpp.o.d"
  "test_naive_oracle"
  "test_naive_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naive_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_naive_oracle.
# This may be replaced when dependencies are built.

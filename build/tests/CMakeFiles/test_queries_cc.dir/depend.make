# Empty dependencies file for test_queries_cc.
# This may be replaced when dependencies are built.

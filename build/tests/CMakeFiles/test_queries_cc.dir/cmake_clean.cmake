file(REMOVE_RECURSE
  "CMakeFiles/test_queries_cc.dir/test_queries_cc.cpp.o"
  "CMakeFiles/test_queries_cc.dir/test_queries_cc.cpp.o.d"
  "test_queries_cc"
  "test_queries_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_balancer.dir/test_balancer.cpp.o"
  "CMakeFiles/test_balancer.dir/test_balancer.cpp.o.d"
  "test_balancer"
  "test_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_join_planner.
# This may be replaced when dependencies are built.

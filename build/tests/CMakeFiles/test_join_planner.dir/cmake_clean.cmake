file(REMOVE_RECURSE
  "CMakeFiles/test_join_planner.dir/test_join_planner.cpp.o"
  "CMakeFiles/test_join_planner.dir/test_join_planner.cpp.o.d"
  "test_join_planner"
  "test_join_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

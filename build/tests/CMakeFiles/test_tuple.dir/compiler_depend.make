# Empty compiler generated dependencies file for test_tuple.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_queries_misc.dir/test_queries_misc.cpp.o"
  "CMakeFiles/test_queries_misc.dir/test_queries_misc.cpp.o.d"
  "test_queries_misc"
  "test_queries_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_ra_op.
# This may be replaced when dependencies are built.

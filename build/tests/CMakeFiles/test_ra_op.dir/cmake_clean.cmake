file(REMOVE_RECURSE
  "CMakeFiles/test_ra_op.dir/test_ra_op.cpp.o"
  "CMakeFiles/test_ra_op.dir/test_ra_op.cpp.o.d"
  "test_ra_op"
  "test_ra_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ra_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
